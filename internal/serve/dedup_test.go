// Tests for the exactly-once ingest layer: the per-producer dedup
// window (suppress duplicates, refuse gaps), overload shedding with
// ShedAfter, and the window's byte-identical survival across crash
// recovery — both from the raw stamped records and from checkpoint
// metadata after compaction truncated them.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/wal"
	"repro/internal/workload"
)

func stampJobs(from, n int) []job.Job {
	js := make([]job.Job, n)
	for i := range js {
		id := from + i
		js[i] = job.Job{ID: id, Release: float64(id), Deadline: float64(id) + 2, Work: 1, Value: 1}
	}
	return js
}

func TestSubmitStampedDedupWindow(t *testing.T) {
	h := NewHost(Config{})
	s, err := h.Create("dw", engine.Spec{Name: "oa", M: 1, Alpha: 2.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// seq 0 is a protocol error, not a duplicate.
	if _, _, _, err := s.SubmitStamped(ctx, "p", 0, stampJobs(0, 1)); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("seq 0: %v, want ErrSeqGap", err)
	}
	// First delivery applies.
	acc, pos, dup, err := s.SubmitStamped(ctx, "p", 1, stampJobs(0, 2))
	if err != nil || dup || acc != 2 {
		t.Fatalf("seq 1: acc=%d dup=%v err=%v", acc, dup, err)
	}
	// A retried delivery of the same sequence is suppressed and acks
	// the original's count and position.
	acc2, pos2, dup2, err := s.SubmitStamped(ctx, "p", 1, stampJobs(0, 2))
	if err != nil || !dup2 || acc2 != 2 || pos2 != pos {
		t.Fatalf("seq 1 retry: acc=%d pos=%d dup=%v err=%v (orig pos %d)", acc2, pos2, dup2, err, pos)
	}
	// Skipping ahead is a client bug.
	if _, _, _, err := s.SubmitStamped(ctx, "p", 4, stampJobs(9, 1)); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("seq 4 after 1: %v, want ErrSeqGap", err)
	}
	// An empty batch advances the window without queueing...
	if acc, _, dup, err := s.SubmitStamped(ctx, "p", 2, nil); err != nil || dup || acc != 0 {
		t.Fatalf("empty seq 2: acc=%d dup=%v err=%v", acc, dup, err)
	}
	// ...and its retry is a duplicate like any other.
	if _, _, dup, err := s.SubmitStamped(ctx, "p", 2, nil); err != nil || !dup {
		t.Fatalf("empty seq 2 retry: dup=%v err=%v", dup, err)
	}
	// A second producer has its own window.
	if acc, _, dup, err := s.SubmitStamped(ctx, "q", 1, stampJobs(2, 1)); err != nil || dup || acc != 1 {
		t.Fatalf("producer q seq 1: acc=%d dup=%v err=%v", acc, dup, err)
	}
	if got := h.Metrics().DedupSuppressed(); got != 2 {
		t.Fatalf("dedup counter = %d, want 2", got)
	}
	if _, err := h.Close("dw"); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitStampedShedsUnderOverload(t *testing.T) {
	reg, gate := blockingRegistry(t)
	h := NewHost(Config{MaxBacklog: 2, Registry: reg, MaxApplyBatch: 1, ShedAfter: 30 * time.Millisecond})
	s, err := h.Create("shed", engine.Spec{Name: "blocking", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A batch that can never fit the ring is refused outright.
	if _, _, _, err := s.SubmitStamped(ctx, "p", 1, stampJobs(0, 3)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized batch: %v, want ErrTooLarge", err)
	}
	if statusOf(ErrTooLarge) != 413 {
		t.Fatalf("ErrTooLarge status = %d, want 413", statusOf(ErrTooLarge))
	}
	// Park the applier in Arrive and fill the queue.
	for i := 0; i < 3; i++ {
		if err := s.Submit(ctx, stampJobs(i, 1)[0]); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	for deadline := time.Now().Add(5 * time.Second); s.Backlog() != 2; {
		if time.Now().After(deadline) {
			t.Fatalf("backlog = %d, want 2", s.Backlog())
		}
		time.Sleep(time.Millisecond)
	}
	// Full past the shed deadline: degrade with ErrOverloaded (429 +
	// Retry-After upstairs) instead of stalling forever.
	if _, _, _, err := s.SubmitStamped(ctx, "p", 1, stampJobs(5, 1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("stamped into full queue: %v, want ErrOverloaded", err)
	}
	if _, err := s.SubmitBatch(ctx, stampJobs(6, 1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("unstamped into full queue: %v, want ErrOverloaded", err)
	}
	if statusOf(ErrOverloaded) != 429 {
		t.Fatalf("ErrOverloaded status = %d, want 429", statusOf(ErrOverloaded))
	}
	if got := h.Metrics().Sheds(); got != 2 {
		t.Fatalf("shed counter = %d, want 2", got)
	}
	// A shed submit consumed no sequence: once load drains, the same
	// (producer, seq) applies fresh.
	close(gate)
	if acc, _, dup, err := s.SubmitStamped(ctx, "p", 1, stampJobs(5, 1)); err != nil || dup || acc != 1 {
		t.Fatalf("retry after shed: acc=%d dup=%v err=%v", acc, dup, err)
	}
	if _, err := h.Close("shed"); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitStampedProducerWindowSaturation(t *testing.T) {
	h := NewHost(Config{MaxProducers: 2})
	s, err := h.Create("sat", engine.Spec{Name: "oa", M: 1, Alpha: 2.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, p := range []string{"a", "b"} {
		if _, _, _, err := s.SubmitStamped(ctx, p, 1, stampJobs(i, 1)); err != nil {
			t.Fatalf("producer %s: %v", p, err)
		}
	}
	// The window is saturated: a third producer is shed, known
	// producers keep flowing.
	if _, _, _, err := s.SubmitStamped(ctx, "c", 1, stampJobs(5, 1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third producer: %v, want ErrOverloaded", err)
	}
	if _, _, _, err := s.SubmitStamped(ctx, "a", 2, stampJobs(6, 1)); err != nil {
		t.Fatalf("known producer after saturation: %v", err)
	}
	if _, err := h.Close("sat"); err != nil {
		t.Fatal(err)
	}
}

// TestStampedWindowSurvivesRecovery is the exactly-once crash
// differential at the serve layer: after a kill, recovery must rebuild
// every producer window from the log so a post-crash retry of an acked
// batch is suppressed, not re-applied — and the recovered session's
// result must still match the uninterrupted replay.
func TestStampedWindowSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(Config{WAL: st})
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.5}
	in := workload.Poisson(workload.Config{N: 30, M: 1, Alpha: 2.5, Seed: 7, ValueScale: 3})
	s, err := h.Create("xo", spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Two producers interleaved with an unstamped run, as a real fleet
	// (stamped loadgen plus legacy client) would produce.
	if _, _, _, err := s.SubmitStamped(ctx, "p1", 1, in.Jobs[:10]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitBatch(ctx, in.Jobs[10:15]); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.SubmitStamped(ctx, "p2", 1, in.Jobs[15:20]); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.SubmitStamped(ctx, "p1", 2, in.Jobs[20:25]); err != nil {
		t.Fatal(err)
	}
	crash(t, h, st)

	h2, st2, _ := recoverHost(t, dir, Config{})
	defer st2.Close()
	s2, err := h2.Get("xo")
	if err != nil {
		t.Fatal(err)
	}
	// Post-crash retries of each producer's in-flight (newest) batch
	// are duplicates, acked from the rebuilt window at an
	// already-durable position. (The protocol is one batch in flight
	// per producer, so only the newest sequence is ever retried — the
	// window records exactly that batch's accepted count.)
	for _, c := range []struct {
		prod string
		seq  uint64
		js   []job.Job
		acc  int
	}{{"p1", 2, in.Jobs[20:25], 5}, {"p2", 1, in.Jobs[15:20], 5}} {
		acc, pos, dup, err := s2.SubmitStamped(ctx, c.prod, c.seq, c.js)
		if err != nil || !dup || acc != c.acc {
			t.Fatalf("recovered retry %s/%d: acc=%d dup=%v err=%v", c.prod, c.seq, acc, dup, err)
		}
		if err := s2.waitDurablePos(ctx, pos); err != nil {
			t.Fatalf("recovered retry %s/%d durable wait: %v", c.prod, c.seq, err)
		}
	}
	// Fresh sequences continue where the window left off.
	if _, _, dup, err := s2.SubmitStamped(ctx, "p1", 3, in.Jobs[25:]); err != nil || dup {
		t.Fatalf("fresh seq after recovery: dup=%v err=%v", dup, err)
	}
	res, err := h2.Close("xo")
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(maskTimes(wantRes[0]))
	bj, _ := json.Marshal(maskTimes(res))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("recovered exactly-once run differs from replay:\n%s\nvs\n%s", aj, bj)
	}
}

// TestWaitDurableCancellation pins the ack gate's context behavior: a
// caller abandoning its durable wait must return promptly (no parked
// waiter survives the cancel), must not poison the gate for later
// callers, and — the exactly-once half — the batch whose ack was lost
// is still recoverable and its retry dedup-suppressed.
func TestWaitDurableCancellation(t *testing.T) {
	dir := t.TempDir()
	// An hour-long group-commit interval: nothing becomes durable
	// unless the test forces a sync, so waiters genuinely park.
	st, err := wal.Open(dir, wal.Options{FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(Config{WAL: st})
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.5}
	in := workload.Poisson(workload.Config{N: 20, M: 1, Alpha: 2.5, Seed: 3, ValueScale: 3})
	s, err := h.Create("wd", spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, pos, _, err := s.SubmitStamped(ctx, "p", 1, in.Jobs[:10])
	if err != nil {
		t.Fatal(err)
	}

	// Park a crowd of ack waiters on the not-yet-durable position, then
	// cancel them all: every one must return context.Canceled promptly.
	cctx, cancel := context.WithCancel(ctx)
	const waiters = 32
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() { errs <- s.waitDurablePos(cctx, pos) }()
	}
	time.Sleep(10 * time.Millisecond) // let them reach the park point
	cancel()
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned waiter %d: %v, want context.Canceled", i, err)
		}
	}

	// The canceled waits left no state behind: once the log syncs, a
	// fresh wait on the same position completes immediately.
	if err := s.wlog.Sync(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.waitDurablePos(ctx, pos) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-sync wait: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-sync wait still parked: canceled waiters broke the gate")
	}

	// The ack was lost, not the batch: after a crash the recovered
	// window suppresses the client's inevitable retry, and the run
	// still matches the uninterrupted replay.
	crash(t, h, st)
	h2, st2, _ := recoverHost(t, dir, Config{})
	defer st2.Close()
	s2, err := h2.Get("wd")
	if err != nil {
		t.Fatal(err)
	}
	if acc, _, dup, err := s2.SubmitStamped(ctx, "p", 1, in.Jobs[:10]); err != nil || !dup || acc != 10 {
		t.Fatalf("retry after canceled ack: acc=%d dup=%v err=%v", acc, dup, err)
	}
	if _, _, _, err := s2.SubmitStamped(ctx, "p", 2, in.Jobs[10:]); err != nil {
		t.Fatal(err)
	}
	res, err := h2.Close("wd")
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(maskTimes(wantRes[0]))
	bj, _ := json.Marshal(maskTimes(res))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("canceled-ack run differs from replay:\n%s\nvs\n%s", aj, bj)
	}
}

// TestStampedWindowSurvivesCheckpoint pins the compaction path: once a
// checkpoint truncates the stamped records, the window must come back
// from checkpoint metadata alone.
func TestStampedWindowSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(Config{WAL: st, CheckpointEvery: 40})
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.5}
	in := workload.Poisson(workload.Config{N: 200, M: 1, Alpha: 2.5, Seed: 11, ValueScale: 3})
	s, err := h.Create("ck", spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < len(in.Jobs); i += 20 {
		end := i + 20
		if end > len(in.Jobs) {
			end = len(in.Jobs)
		}
		if _, _, _, err := s.SubmitStamped(ctx, "prod", uint64(i/20+1), in.Jobs[i:end]); err != nil {
			t.Fatalf("batch %d: %v", i/20, err)
		}
	}
	if err := s.waitDurable(ctx); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); st.Stats().Checkpoints == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint happened; the test would not cover compaction")
		}
		time.Sleep(time.Millisecond)
	}
	td, err := os.ReadDir(filepath.Join(dir, "tenants"))
	if err != nil || len(td) != 1 {
		t.Fatalf("tenant dirs: %v, %v", td, err)
	}
	crash(t, h, st)

	h2, st2, _ := recoverHost(t, dir, Config{CheckpointEvery: 40})
	defer st2.Close()
	s2, err := h2.Get("ck")
	if err != nil {
		t.Fatal(err)
	}
	// The last acked sequence survives compaction via checkpoint meta.
	last := uint64((len(in.Jobs) + 19) / 20)
	if acc, _, dup, err := s2.SubmitStamped(ctx, "prod", last, in.Jobs[len(in.Jobs)-20:]); err != nil || !dup || acc != 20 {
		t.Fatalf("post-checkpoint retry: acc=%d dup=%v err=%v", acc, dup, err)
	}
	res, err := h2.Close("ck")
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(maskTimes(wantRes[0]))
	bj, _ := json.Marshal(maskTimes(res))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("post-checkpoint exactly-once run differs from replay:\n%s\nvs\n%s", aj, bj)
	}
}
