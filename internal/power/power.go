// Package power implements the dynamic-speed-scaling power model of
// Yao, Demers and Shenker: a processor running at speed s ≥ 0 consumes
// power P_α(s) = s^α for a constant energy exponent α > 1. All
// algorithms in this repository are parameterised by a Model value.
package power

import (
	"fmt"
	"math"
)

// Model is the power function P(s) = s^Alpha.
type Model struct {
	// Alpha is the energy exponent, α > 1. Classical CMOS systems are
	// approximated well by α = 3 (cube-root rule).
	Alpha float64
}

// New returns a Model with the given exponent, panicking on invalid α.
// The exponent is a structural constant of a deployment, so a bad value
// is a programming error rather than a runtime condition.
func New(alpha float64) Model {
	m := Model{Alpha: alpha}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// Validate reports whether the model is usable (α > 1, finite).
func (m Model) Validate() error {
	if math.IsNaN(m.Alpha) || math.IsInf(m.Alpha, 0) || m.Alpha <= 1 {
		return fmt.Errorf("power: energy exponent must be finite and > 1, got %v", m.Alpha)
	}
	return nil
}

// Power returns P(s) = s^α for speed s ≥ 0.
func (m Model) Power(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return math.Pow(s, m.Alpha)
}

// Energy returns the energy consumed running at constant speed s for
// duration dt: dt·s^α.
func (m Model) Energy(s, dt float64) float64 {
	return dt * m.Power(s)
}

// Marginal returns P'(s) = α·s^{α-1}, the marginal power of speed.
func (m Model) Marginal(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return m.Alpha * math.Pow(s, m.Alpha-1)
}

// SpeedForMarginal inverts Marginal: the speed s with α·s^{α-1} = g.
func (m Model) SpeedForMarginal(g float64) float64 {
	if g <= 0 {
		return 0
	}
	return math.Pow(g/m.Alpha, 1/(m.Alpha-1))
}

// CompetitiveBound returns α^α, the paper's tight competitive ratio for
// algorithm PD (Theorem 3).
func (m Model) CompetitiveBound() float64 {
	return math.Pow(m.Alpha, m.Alpha)
}

// DefaultDelta returns δ = α^{1-α} = 1/α^{α-1}, the optimal choice of
// PD's parameter established in Section 4 of the paper.
func (m Model) DefaultDelta() float64 {
	return math.Pow(m.Alpha, 1-m.Alpha)
}

// CLLBound returns α^α + 2e^α, the competitive ratio of the
// Chan-Lam-Li single-processor algorithm that PD improves upon.
func (m Model) CLLBound() float64 {
	return math.Pow(m.Alpha, m.Alpha) + 2*math.Exp(m.Alpha)
}

// RejectionSpeed returns the threshold speed above which PD (with
// parameter δ) rejects a job of workload w and value v: the speed s at
// which δ·w·P'(s) = v, i.e. s = (v/(δ·α·w))^{1/(α-1)}.
func (m Model) RejectionSpeed(delta, w, v float64) float64 {
	if w <= 0 || v <= 0 {
		return 0
	}
	return math.Pow(v/(delta*m.Alpha*w), 1/(m.Alpha-1))
}
