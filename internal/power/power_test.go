package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	for _, alpha := range []float64{1, 0.5, -2, math.NaN(), math.Inf(1)} {
		if err := (Model{Alpha: alpha}).Validate(); err == nil {
			t.Errorf("alpha=%v should be rejected", alpha)
		}
	}
	for _, alpha := range []float64{1.1, 2, 3, 10} {
		if err := (Model{Alpha: alpha}).Validate(); err != nil {
			t.Errorf("alpha=%v should be accepted: %v", alpha, err)
		}
	}
}

func TestNewPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0.5) must panic")
		}
	}()
	New(0.5)
}

func TestPowerKnownValues(t *testing.T) {
	m := New(3)
	cases := []struct{ s, want float64 }{
		{0, 0}, {1, 1}, {2, 8}, {0.5, 0.125},
	}
	for _, c := range cases {
		if got := m.Power(c.s); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("P(%v)=%v want %v", c.s, got, c.want)
		}
	}
	if m.Power(-1) != 0 {
		t.Error("negative speed must cost nothing (clamped)")
	}
}

func TestEnergy(t *testing.T) {
	m := New(2)
	if got := m.Energy(3, 2); got != 18 {
		t.Fatalf("E(3 for 2)=%v want 18", got)
	}
}

func TestMarginalIsDerivative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		m := New(1.2 + 3*rng.Float64())
		s := 0.1 + 5*rng.Float64()
		h := 1e-6 * s
		fd := (m.Power(s+h) - m.Power(s-h)) / (2 * h)
		if math.Abs(fd-m.Marginal(s)) > 1e-4*(1+fd) {
			t.Fatalf("alpha=%v s=%v: marginal %v vs finite diff %v", m.Alpha, s, m.Marginal(s), fd)
		}
	}
}

func TestSpeedForMarginalInverts(t *testing.T) {
	err := quick.Check(func(a, s float64) bool {
		alpha := 1.1 + math.Mod(math.Abs(a), 4)
		speed := 0.01 + math.Mod(math.Abs(s), 100)
		m := Model{Alpha: alpha}
		back := m.SpeedForMarginal(m.Marginal(speed))
		return math.Abs(back-speed) < 1e-9*(1+speed)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpeedForMarginalZero(t *testing.T) {
	m := New(2)
	if m.SpeedForMarginal(0) != 0 || m.SpeedForMarginal(-1) != 0 {
		t.Fatal("nonpositive marginal must map to speed 0")
	}
}

func TestCompetitiveBound(t *testing.T) {
	if got := New(2).CompetitiveBound(); got != 4 {
		t.Fatalf("2^2=%v", got)
	}
	if got := New(3).CompetitiveBound(); got != 27 {
		t.Fatalf("3^3=%v", got)
	}
}

func TestDefaultDelta(t *testing.T) {
	// δ = α^{1-α}: for α=2 that is 1/2, for α=3 it is 1/9.
	if got := New(2).DefaultDelta(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("delta(2)=%v want 0.5", got)
	}
	if got := New(3).DefaultDelta(); math.Abs(got-1.0/9) > 1e-15 {
		t.Fatalf("delta(3)=%v want 1/9", got)
	}
}

func TestCLLBoundExceedsPDBound(t *testing.T) {
	// The paper's improvement claim: α^α < α^α + 2e^α for every α.
	for _, a := range []float64{1.5, 2, 2.5, 3, 4} {
		m := New(a)
		if m.CLLBound() <= m.CompetitiveBound() {
			t.Errorf("alpha=%v: CLL bound %v not above PD bound %v", a, m.CLLBound(), m.CompetitiveBound())
		}
	}
}

func TestRejectionSpeed(t *testing.T) {
	m := New(2)
	delta := m.DefaultDelta() // 1/2
	// δ·α·w·s = v with α=2: s = v/(δ·2·w) = v/w.
	if got := m.RejectionSpeed(delta, 2, 6); math.Abs(got-3) > 1e-12 {
		t.Fatalf("rejection speed got %v want 3", got)
	}
	if m.RejectionSpeed(delta, 0, 1) != 0 || m.RejectionSpeed(delta, 1, 0) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestRejectionSpeedMonotoneInValue(t *testing.T) {
	m := New(2.5)
	d := m.DefaultDelta()
	prev := 0.0
	for v := 0.5; v < 100; v *= 2 {
		s := m.RejectionSpeed(d, 1, v)
		if s <= prev {
			t.Fatalf("rejection speed must grow with value: v=%v s=%v prev=%v", v, s, prev)
		}
		prev = s
	}
}
