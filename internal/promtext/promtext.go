// Package promtext renders Prometheus text exposition format by hand:
// strconv appends into a caller-owned buffer, no client library, no
// fmt, no reflection. It exists so every scrape in the tree — the
// daemon's /metrics, the WAL section, the cluster controller's
// fleet-merged view — shares one implementation of the format and one
// allocation discipline (the caller pools the buffer; these helpers
// only append).
package promtext

import (
	"math"
	"strconv"

	"repro/internal/stats"
)

// AppendHeader emits one # HELP / # TYPE preamble.
//
//schedlint:hotpath
func AppendHeader(b []byte, name, help, typ string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

// AppendUint emits a full uint-valued metric: preamble plus sample.
//
//schedlint:hotpath
func AppendUint(b []byte, name, help, typ string, v uint64) []byte {
	b = AppendHeader(b, name, help, typ)
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	return append(b, '\n')
}

// AppendInt emits a full int-valued metric: preamble plus sample.
//
//schedlint:hotpath
func AppendInt(b []byte, name, help, typ string, v int64) []byte {
	b = AppendHeader(b, name, help, typ)
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, v, 10)
	return append(b, '\n')
}

// AppendFloat emits a full float-valued metric: preamble plus sample.
//
//schedlint:hotpath
func AppendFloat(b []byte, name, help, typ string, v float64) []byte {
	b = AppendHeader(b, name, help, typ)
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	return append(b, '\n')
}

// AppendHistogram emits a full Prometheus histogram — cumulative
// buckets, sum and count — from a stats.Histogram snapshot.
//
//schedlint:hotpath
func AppendHistogram(b []byte, name, help string, h stats.Histogram) []byte {
	b = AppendHeader(b, name, help, "histogram")
	for cur := h.Cursor(); ; {
		ub, cum, ok := cur.Next()
		if !ok {
			break
		}
		b = append(b, name...)
		b = append(b, `_bucket{le="`...)
		if math.IsInf(ub, 1) {
			b = append(b, "+Inf"...)
		} else {
			b = strconv.AppendFloat(b, ub, 'g', -1, 64)
		}
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, "_sum "...)
	b = strconv.AppendFloat(b, h.Sum(), 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count "...)
	b = strconv.AppendUint(b, h.Count(), 10)
	return append(b, '\n')
}

// AppendGauge emits an untyped single-sample gauge with only the
// # TYPE line — the compact form the quantile gauges use.
//
//schedlint:hotpath
func AppendGauge(b []byte, name string, v float64) []byte {
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, " gauge\n"...)
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	return append(b, '\n')
}
