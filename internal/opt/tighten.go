// Dual tightening: coordinate ascent on the concave dual function.

package opt

import (
	"math"

	"repro/internal/dual"
	"repro/internal/job"
	"repro/internal/power"
)

// TightenDual improves a dual point λ by cyclic coordinate ascent on
// g(λ) and returns the improved multipliers and their dual value. Since
// g is concave and every accepted step is verified to not decrease g,
// the result is always at least as good a lower bound as the input —
// typically strictly better when the input λ comes from an online
// algorithm rather than the offline optimum.
//
// Each coordinate is optimised by golden-section search on [0, hi_j]
// where hi_j adapts to the incumbent. rounds bounds the number of full
// sweeps; the search stops early when a sweep improves g by less than
// a 1e-9 relative amount.
func TightenDual(in *job.Instance, lambda map[int]float64, rounds int) (map[int]float64, float64) {
	pm := power.Model{Alpha: in.Alpha}
	cur := make(map[int]float64, len(lambda))
	for id, l := range lambda {
		cur[id] = math.Max(0, l)
	}
	best := dual.Value(pm, in.M, in.Jobs, cur)

	for r := 0; r < rounds; r++ {
		improved := 0.0
		for _, j := range in.Jobs {
			id := j.ID
			hi := 4 * (cur[id] + 1)
			if !math.IsInf(j.Value, 1) {
				// Beyond v_j the linear term saturates while the energy
				// term keeps falling, so the optimum is ≤ v_j... unless
				// the job never contributes energy; cap generously.
				hi = math.Max(hi, 2*j.Value)
			}
			eval := func(l float64) float64 {
				old := cur[id]
				cur[id] = l
				g := dual.Value(pm, in.M, in.Jobs, cur)
				cur[id] = old
				return g
			}
			l, g := goldenMax(eval, 0, hi)
			if g > best {
				improved += g - best
				cur[id] = l
				best = g
			}
		}
		if improved <= 1e-9*math.Max(1, math.Abs(best)) {
			break
		}
	}
	return cur, best
}

// goldenMax maximises a unimodal function on [lo, hi] by golden-section
// search and returns the argmax and maximum. For concave f (our case,
// g restricted to one coordinate) unimodality holds.
func goldenMax(f func(float64) float64, lo, hi float64) (float64, float64) {
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 80 && b-a > 1e-12*(1+math.Abs(b)); i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		}
	}
	mid := 0.5 * (a + b)
	return mid, f(mid)
}
