// Package opt provides offline reference solvers for the paper's
// scheduling problem. They serve as the "OPT" side of every
// competitive-ratio experiment:
//
//   - SolveAccepted: for a fixed set of accepted jobs, the energy-minimal
//     multiprocessor schedule that finishes all of them (the
//     multiprocessor analogue of YDS; cf. Albers, Antoniadis & Greiner).
//     It solves the convex program (CP) with all y_j forced to 1 by
//     block coordinate descent, where each block step is the same
//     exact water-filling primitive PD uses online.
//   - Integral: the true optimum of (IMP) for small n, by enumerating
//     accept-sets and calling SolveAccepted on each.
//   - Both report a KKT-derived dual lower bound via dual.Value, so
//     every result carries a certified optimality gap.
package opt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chen"
	"repro/internal/dual"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sched"
)

// Solution is the result of an offline solve.
type Solution struct {
	// Energy of the computed schedule (for Integral: of the best
	// accept-set's schedule).
	Energy float64
	// Cost is Energy plus the value of jobs outside the accept-set.
	Cost float64
	// LowerBound is a certified lower bound on the optimal cost via
	// the dual function; Cost - LowerBound bounds the optimality gap.
	LowerBound float64
	// Accepted[id] reports whether job id is finished.
	Accepted map[int]bool
	// Schedule is the explicit realisation.
	Schedule *sched.Schedule
	// Sweeps is the number of coordinate-descent passes used.
	Sweeps int
}

// solver carries the BCD state for one accept-set.
type solver struct {
	sys  chen.System
	part *interval.Partition
	jobs []job.Job       // accepted jobs only
	ks   map[int][]int   // job ID -> covering interval indices
	spd  map[int]float64 // job ID -> current water level speed
}

// maxSweeps bounds coordinate descent; convergence is checked by
// energy decrease per sweep.
const maxSweeps = 400

// convergeTol is the relative per-sweep energy-decrease threshold at
// which BCD stops.
const convergeTol = 1e-12

// SolveAccepted computes the minimum-energy schedule finishing exactly
// the jobs of in with accept[id] == true (all jobs when accept is nil),
// ignoring the values of rejected jobs. Releases and deadlines of
// accepted jobs induce the atomic intervals.
func SolveAccepted(in *job.Instance, accept map[int]bool) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	pm := power.Model{Alpha: in.Alpha}
	s := &solver{
		sys: chen.System{M: in.M, Power: pm},
		ks:  map[int][]int{},
		spd: map[int]float64{},
	}
	var rejectedValue float64
	var rejected []int
	for _, j := range in.Jobs {
		if accept == nil || accept[j.ID] {
			s.jobs = append(s.jobs, j)
		} else {
			rejectedValue += j.Value
			rejected = append(rejected, j.ID)
		}
	}

	sol := &Solution{Accepted: map[int]bool{}}
	for _, j := range s.jobs {
		sol.Accepted[j.ID] = true
	}
	if len(s.jobs) == 0 {
		sol.Cost = rejectedValue
		sol.LowerBound = lowerBoundAll(pm, in, nil)
		sol.Schedule = &sched.Schedule{M: in.M, Rejected: rejected}
		return sol, nil
	}

	windows := make([][2]float64, len(s.jobs))
	for i, j := range s.jobs {
		windows[i] = [2]float64{j.Release, j.Deadline}
	}
	part, err := interval.FromBoundaries(interval.BoundariesOf(windows))
	if err != nil {
		return nil, err
	}
	s.part = part
	for _, j := range s.jobs {
		s.ks[j.ID] = part.Covering(j.Release, j.Deadline)
		if len(s.ks[j.ID]) == 0 {
			return nil, fmt.Errorf("opt: job %d has no covering interval", j.ID)
		}
		// Initial assignment: spread uniformly over the window.
		for _, k := range s.ks[j.ID] {
			iv := part.At(k)
			part.At(k).Load[j.ID] = j.Work * iv.Len() / j.Span()
		}
		s.spd[j.ID] = j.Density()
	}

	prev := s.energy()
	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		for _, j := range s.jobs {
			s.refit(j)
		}
		cur := s.energy()
		if prev-cur <= convergeTol*math.Max(1, prev) {
			prev = cur
			sweeps++
			break
		}
		prev = cur
	}

	sol.Energy = prev
	sol.Cost = prev + rejectedValue
	sol.Sweeps = sweeps
	sol.Schedule = s.schedule(rejected)
	// KKT guess for the dual point restricted to accepted jobs: at the
	// optimum each accepted job runs at one speed s_j across its used
	// intervals and λ_j = α·w_j·s_j^{α-1}. Rejected jobs take λ_j = 0
	// (their constraint is slack in this restricted program), so the
	// bound is a valid lower bound for the *restricted* problem only
	// when rejectedValue is added back.
	lambda := map[int]float64{}
	for _, j := range s.jobs {
		lambda[j.ID] = j.Work * pm.Marginal(s.spd[j.ID])
	}
	vInf := make([]job.Job, len(s.jobs))
	copy(vInf, s.jobs)
	for i := range vInf {
		vInf[i].Value = math.Inf(1) // finish-all: min(λ, v) = λ
	}
	sol.LowerBound = dual.Value(pm, in.M, vInf, lambda) + rejectedValue
	return sol, nil
}

// refit re-optimises job j's assignment given all other jobs, exactly:
// removes j, then water-fills its workload back at the level where the
// interval capacities absorb w_j.
func (s *solver) refit(j job.Job) {
	ks := s.ks[j.ID]
	others := make([][]chen.Item, len(ks))
	lens := make([]float64, len(ks))
	for i, k := range ks {
		iv := s.part.At(k)
		delete(iv.Load, j.ID)
		others[i] = itemsOf(iv.Load)
		lens[i] = iv.Len()
	}
	capacity := func(sp float64) float64 {
		var acc numeric.Accumulator
		for i := range ks {
			acc.Add(s.sys.WorkAtSpeed(lens[i], others[i], sp))
		}
		return acc.Value()
	}
	sp, err := numeric.SolveIncreasing(capacity, s.spd[j.ID], j.Work, numeric.DefaultTol)
	if err != nil {
		// Unbounded capacity is guaranteed (empty intervals absorb
		// arbitrarily much at high speed); defensive fallback.
		sp = j.Density()
	}
	s.spd[j.ID] = sp
	var total float64
	zs := make([]float64, len(ks))
	for i := range ks {
		zs[i] = s.sys.WorkAtSpeed(lens[i], others[i], sp)
		total += zs[i]
	}
	if total <= 0 {
		zs[0], total = j.Work, j.Work
	}
	scale := j.Work / total
	for i, k := range ks {
		if zs[i] > 0 {
			s.part.At(k).Load[j.ID] = zs[i] * scale
		}
	}
}

// itemsOf collects an interval's positive loads as chen items, sorted
// by job ID: map iteration order would otherwise leak into float
// summation order (capacity, energy, Chen's partition) and make solves
// differ in the last ulp from run to run (cf. core.othersOf).
func itemsOf(load map[int]float64) []chen.Item {
	items := make([]chen.Item, 0, len(load))
	for id, w := range load {
		if w > 0 {
			items = append(items, chen.Item{ID: id, Work: w})
		}
	}
	sort.Slice(items, func(i, k int) bool { return items[i].ID < items[k].ID })
	return items
}

func (s *solver) energy() float64 {
	var acc numeric.Accumulator
	for _, iv := range s.part.All() {
		items := itemsOf(iv.Load)
		if len(items) > 0 {
			acc.Add(s.sys.Energy(iv.Len(), items))
		}
	}
	return acc.Value()
}

func (s *solver) schedule(rejected []int) *sched.Schedule {
	out := &sched.Schedule{M: s.sys.M, Rejected: rejected}
	for _, iv := range s.part.All() {
		items := itemsOf(iv.Load)
		if len(items) > 0 {
			out.Segments = append(out.Segments, s.sys.Timeline(iv.T0, iv.T1, items)...)
		}
	}
	return out
}

// lowerBoundAll evaluates the generic dual bound for the full profit
// problem at the given λ (nil means λ = 0, bound 0).
func lowerBoundAll(pm power.Model, in *job.Instance, lambda map[int]float64) float64 {
	if lambda == nil {
		return 0
	}
	return dual.Value(pm, in.M, in.Jobs, lambda)
}

// IntegralLimit is the largest n Integral will enumerate (2^n solves).
const IntegralLimit = 18

// Integral computes the exact optimum of the integral program (IMP) by
// enumerating all accept-sets. It is exponential in n and refuses
// instances with more than IntegralLimit jobs.
func Integral(in *job.Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Jobs)
	if n > IntegralLimit {
		return nil, fmt.Errorf("opt: %d jobs exceeds enumeration limit %d", n, IntegralLimit)
	}
	ids := make([]int, n)
	for i, j := range in.Jobs {
		ids[i] = j.ID
	}
	var best *Solution
	for mask := 0; mask < 1<<n; mask++ {
		accept := map[int]bool{}
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				accept[ids[b]] = true
			}
		}
		sol, err := SolveAccepted(in, accept)
		if err != nil {
			return nil, err
		}
		if best == nil || sol.Cost < best.Cost {
			best = sol
		}
	}
	return best, nil
}

// DualAtPD evaluates the generic dual lower bound g(λ) at an arbitrary
// multiplier vector — used to certify ratios on instances too large for
// Integral. It is re-exported here so experiment code does not need to
// import internal/dual directly.
func DualAtPD(in *job.Instance, lambda map[int]float64) float64 {
	return dual.Value(power.Model{Alpha: in.Alpha}, in.M, in.Jobs, lambda)
}
