package opt

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
)

// TestTightenNeverWorsens: the returned dual value is at least the
// input's, and every intermediate bound stays below the integral OPT.
func TestTightenNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 1+rng.Intn(7), 1+rng.Intn(2), 2+rng.Float64(), false)
		res, err := core.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		lam, g := TightenDual(in, lambdasOf(res), 5)
		if g < res.Dual-1e-9*(1+res.Dual) {
			t.Fatalf("trial %d: tightening worsened the bound: %v -> %v", trial, res.Dual, g)
		}
		best, err := Integral(in)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.LessEqual(g, best.Cost, 1e-6) {
			t.Fatalf("trial %d: tightened bound %v above OPT %v (weak duality broken)",
				trial, g, best.Cost)
		}
		for id, l := range lam {
			if l < 0 {
				t.Fatalf("negative multiplier for job %d: %v", id, l)
			}
		}
	}
}

// TestTightenImprovesTypically: averaged over instances, tightening
// should strictly improve PD's certificate on most contested workloads.
func TestTightenImprovesTypically(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	improved := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		in := randInstance(rng, 8, 2, 2.5, false)
		res, err := core.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		_, g := TightenDual(in, lambdasOf(res), 5)
		if g > res.Dual*(1+1e-9) {
			improved++
		}
	}
	if improved < trials/2 {
		t.Fatalf("tightening improved only %d/%d certificates", improved, trials)
	}
}

func TestGoldenMaxFindsParabolaPeak(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	x, v := goldenMax(f, 0, 10)
	if x < 2.999 || x > 3.001 || v < -1e-6 {
		t.Fatalf("peak at %v (value %v), want 3", x, v)
	}
}

func lambdasOf(res *core.Result) map[int]float64 {
	out := map[int]float64{}
	for _, d := range res.Decisions {
		out[d.JobID] = d.Lambda
	}
	return out
}
