package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sched"
)

func randInstance(rng *rand.Rand, n, m int, alpha float64, infValues bool) *job.Instance {
	in := &job.Instance{M: m, Alpha: alpha}
	pm := power.Model{Alpha: alpha}
	for i := 0; i < n; i++ {
		r := rng.Float64() * 6
		span := 0.3 + rng.Float64()*2.5
		w := 0.1 + rng.Float64()*2
		v := math.Inf(1)
		if !infValues {
			solo := span * pm.Power(w/span)
			v = solo * math.Exp(rng.NormFloat64())
		}
		in.Jobs = append(in.Jobs, job.Job{ID: i, Release: r, Deadline: r + span, Work: w, Value: v})
	}
	in.Normalize()
	return in
}

func TestSolveAcceptedSingleJob(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 4, Value: 1},
	}}
	sol, err := SolveAccepted(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Energy-8) > 1e-9 { // 2·(4/2)^2
		t.Fatalf("energy %v want 8", sol.Energy)
	}
	if err := sched.Verify(in, sol.Schedule); err != nil {
		t.Fatal(err)
	}
	if !numeric.LessEqual(sol.LowerBound, sol.Cost, 1e-9) {
		t.Fatalf("lower bound %v above cost %v", sol.LowerBound, sol.Cost)
	}
	if sol.Cost-sol.LowerBound > 1e-6*(1+sol.Cost) {
		t.Fatalf("gap too large: cost %v lb %v", sol.Cost, sol.LowerBound)
	}
}

func TestSolveAcceptedTwoProcessorsBalance(t *testing.T) {
	in := &job.Instance{M: 2, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 1},
		{ID: 1, Release: 0, Deadline: 1, Work: 1, Value: 1},
	}}
	sol, err := SolveAccepted(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Energy-2) > 1e-9 {
		t.Fatalf("energy %v want 2 (one job per processor)", sol.Energy)
	}
}

func TestSolveAcceptedRespectsAcceptSet(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 7},
		{ID: 1, Release: 0, Deadline: 1, Work: 1, Value: 3},
	}}
	sol, err := SolveAccepted(in, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Energy-1) > 1e-9 {
		t.Fatalf("energy %v want 1", sol.Energy)
	}
	if math.Abs(sol.Cost-4) > 1e-9 { // energy 1 + lost value 3
		t.Fatalf("cost %v want 4", sol.Cost)
	}
	if sol.Accepted[1] {
		t.Fatal("job 1 must not be accepted")
	}
	if err := sched.Verify(in, sol.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestSolveAcceptedEmptySet(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 7},
	}}
	sol, err := SolveAccepted(in, map[int]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 7 || sol.Energy != 0 {
		t.Fatalf("reject-everything cost %v energy %v", sol.Cost, sol.Energy)
	}
}

// TestSolverGapSmall: BCD must converge: the certified duality gap on
// random finish-all instances stays tiny.
func TestSolverGapSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 1+rng.Intn(10), 1+rng.Intn(3), 2+rng.Float64(), true)
		sol, err := SolveAccepted(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Verify(in, sol.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !numeric.LessEqual(sol.LowerBound, sol.Cost, 1e-9) {
			t.Fatalf("trial %d: lb %v > cost %v", trial, sol.LowerBound, sol.Cost)
		}
		gap := (sol.Cost - sol.LowerBound) / math.Max(1, sol.Cost)
		if gap > 1e-4 {
			t.Fatalf("trial %d: gap %v too large (cost %v lb %v, %d sweeps)",
				trial, gap, sol.Cost, sol.LowerBound, sol.Sweeps)
		}
	}
}

func TestIntegralPrefersRejectingWorthlessJob(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		// Finishing costs 1·(10/1)^2 = 100 energy; value only 1.
		{ID: 0, Release: 0, Deadline: 1, Work: 10, Value: 1},
		// Cheap valuable job.
		{ID: 1, Release: 0, Deadline: 1, Work: 0.1, Value: 50},
	}}
	sol, err := Integral(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Accepted[0] {
		t.Fatal("job 0 should be rejected (energy 100 vs value 1)")
	}
	if !sol.Accepted[1] {
		t.Fatal("job 1 should be accepted")
	}
	want := 1.0 + 0.1*0.1 // value 1 lost + energy 0.01
	if math.Abs(sol.Cost-want) > 1e-9 {
		t.Fatalf("cost %v want %v", sol.Cost, want)
	}
}

func TestIntegralAcceptsEverythingWhenValuesHuge(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	in := randInstance(rng, 5, 2, 2, true)
	sol, err := Integral(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		if !sol.Accepted[j.ID] {
			t.Fatalf("job %d with infinite value rejected", j.ID)
		}
	}
}

func TestIntegralLimit(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2}
	for i := 0; i <= IntegralLimit; i++ {
		in.Jobs = append(in.Jobs, job.Job{ID: i, Release: 0, Deadline: 1, Work: 1, Value: 1})
	}
	if _, err := Integral(in); err == nil {
		t.Fatal("enumeration above limit must be refused")
	}
}

// TestIntegralBelowAllSingletonPolicies: the enumerated optimum is at
// least as good as accept-all and reject-all.
func TestIntegralBelowAllSingletonPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 1+rng.Intn(7), 1+rng.Intn(2), 2.5, false)
		best, err := Integral(in)
		if err != nil {
			t.Fatal(err)
		}
		all, err := SolveAccepted(in, allOf(in))
		if err != nil {
			t.Fatal(err)
		}
		none, err := SolveAccepted(in, map[int]bool{})
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.LessEqual(best.Cost, all.Cost, 1e-9) || !numeric.LessEqual(best.Cost, none.Cost, 1e-9) {
			t.Fatalf("trial %d: integral %v above accept-all %v or reject-all %v",
				trial, best.Cost, all.Cost, none.Cost)
		}
	}
}

func allOf(in *job.Instance) map[int]bool {
	m := map[int]bool{}
	for _, j := range in.Jobs {
		m[j.ID] = true
	}
	return m
}

func TestSolveAcceptedValidation(t *testing.T) {
	if _, err := SolveAccepted(&job.Instance{M: 0, Alpha: 2}, nil); err == nil {
		t.Fatal("invalid instance accepted")
	}
}
