package workload

import (
	"math"
	"sort"
	"testing"

	"repro/internal/job"
)

func checkValid(t *testing.T, in *job.Instance, wantN int) {
	t.Helper()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Jobs) != wantN {
		t.Fatalf("want %d jobs, got %d", wantN, len(in.Jobs))
	}
	for i := 1; i < len(in.Jobs); i++ {
		if in.Jobs[i].Release < in.Jobs[i-1].Release {
			t.Fatal("not normalized by release time")
		}
	}
}

func TestGeneratorsProduceValidInstances(t *testing.T) {
	cfg := Config{N: 30, M: 3, Alpha: 2.5, Seed: 1}
	for name, gen := range map[string]func(Config) *job.Instance{
		"uniform": Uniform, "poisson": Poisson, "diurnal": Diurnal, "bursty": Bursty,
	} {
		in := gen(cfg)
		t.Run(name, func(t *testing.T) { checkValid(t, in, 30) })
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{N: 10, M: 1, Alpha: 2, Seed: 99}
	a, b := Uniform(cfg), Uniform(cfg)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatal("same seed must give identical instances")
		}
	}
	cfg2 := cfg
	cfg2.Seed = 100
	c := Uniform(cfg2)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestInfiniteValueScale(t *testing.T) {
	in := Uniform(Config{N: 5, M: 1, Alpha: 2, Seed: 3, ValueScale: math.Inf(1)})
	for _, j := range in.Jobs {
		if !math.IsInf(j.Value, 1) {
			t.Fatalf("job %d value %v, want +Inf", j.ID, j.Value)
		}
	}
}

func TestValueScaleShiftsValues(t *testing.T) {
	lo := Uniform(Config{N: 20, M: 1, Alpha: 2, Seed: 5, ValueScale: 0.1})
	hi := Uniform(Config{N: 20, M: 1, Alpha: 2, Seed: 5, ValueScale: 10})
	var sumLo, sumHi float64
	for i := range lo.Jobs {
		sumLo += lo.Jobs[i].Value
		sumHi += hi.Jobs[i].Value
	}
	if sumHi <= sumLo*50 { // exact factor is 100; leave slack
		t.Fatalf("value scale had no effect: %v vs %v", sumLo, sumHi)
	}
}

func TestLowerBoundInstanceShape(t *testing.T) {
	in := LowerBound(5, 2)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Jobs) != 5 || in.M != 1 {
		t.Fatalf("unexpected shape: %+v", in)
	}
	for j, jb := range in.Jobs {
		if jb.Release != float64(j) || jb.Deadline != 5 {
			t.Fatalf("job %d window [%v,%v)", j, jb.Release, jb.Deadline)
		}
		want := math.Pow(float64(5-j), -0.5)
		if math.Abs(jb.Work-want) > 1e-12 {
			t.Fatalf("job %d work %v want %v", j, jb.Work, want)
		}
	}
}

func TestFigureInstances(t *testing.T) {
	if err := Figure3().Validate(); err != nil {
		t.Fatal(err)
	}
	before, after := Figure2()
	if err := before.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := after.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(after.Jobs) != len(before.Jobs)+1 {
		t.Fatal("Figure2 'after' must add exactly one job")
	}
}

func TestBurstyHasSimultaneousArrivals(t *testing.T) {
	in := Bursty(Config{N: 40, M: 4, Alpha: 2, Seed: 7})
	same := 0
	for i := 1; i < len(in.Jobs); i++ {
		if in.Jobs[i].Release == in.Jobs[i-1].Release {
			same++
		}
	}
	if same == 0 {
		t.Fatal("bursty workload has no simultaneous arrivals")
	}
}

func TestHeavyTailShape(t *testing.T) {
	in := HeavyTail(Config{N: 400, M: 1, Alpha: 2, Seed: 11})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Jobs) != 400 {
		t.Fatalf("want 400 jobs, got %d", len(in.Jobs))
	}
	// Pareto works: the largest draw dominates the median by a wide
	// margin, and nothing escapes the 50×WorkMax cap.
	works := make([]float64, len(in.Jobs))
	for i, j := range in.Jobs {
		works[i] = j.Work
	}
	sort.Float64s(works)
	median, max := works[len(works)/2], works[len(works)-1]
	if max < 5*median {
		t.Fatalf("tail too light: max %v vs median %v", max, median)
	}
	cfg := Config{}.withDefaults()
	if max > 50*cfg.WorkMax+1e-9 {
		t.Fatalf("work %v above the elephant cap", max)
	}
}

func TestFleetIsDeterministicAndDecorrelated(t *testing.T) {
	cfg := Config{N: 20, M: 1, Alpha: 2, Seed: 5}
	a := Fleet(Uniform, cfg, 6)
	b := Fleet(Uniform, cfg, 6)
	if len(a) != 6 || len(b) != 6 {
		t.Fatal("wrong fleet size")
	}
	for i := range a {
		if err := a[i].Validate(); err != nil {
			t.Fatal(err)
		}
		if a[i].Jobs[0] != b[i].Jobs[0] || a[i].Jobs[19] != b[i].Jobs[19] {
			t.Fatalf("fleet member %d not deterministic", i)
		}
	}
	if a[0].Jobs[0].Release == a[1].Jobs[0].Release {
		t.Fatal("fleet members share a seed")
	}
}
