// Stream turns a generated instance into live traffic: a
// deterministic iterator over the instance's arrivals in release
// order, each tagged with the wall-clock moment it is due under a
// time-scale knob. The load generator uses it to hammer the serving
// daemon in scaled real time; the differential tests use it at scale
// zero to pin that streaming an instance into a session is
// byte-identical to batch replay.

package workload

import (
	"context"
	"time"

	"repro/internal/job"
)

// Stream iterates an instance's jobs in normalized release order with
// a wall-clock due time per arrival. The mapping is deterministic:
// job j is due at (r_j - r_first) × Scale after the stream's start,
// so the arrival pattern of the trace (bursts, diurnal waves, heavy
// tails) is reproduced faithfully at any speed. A Stream is not
// synchronized; one goroutine drives it.
type Stream struct {
	jobs  []job.Job
	base  float64 // release of the first job
	scale time.Duration
	next  int
}

// NewStream builds a stream over the instance. scale is the wall-clock
// duration of one unit of model time — e.g. 100ms compresses a
// 10-unit-horizon trace into about a second; 0 (or negative) means
// every arrival is due immediately (as fast as possible). The
// instance is cloned and normalized, so the stream's order is exactly
// the order batch replay feeds policies.
func NewStream(in *job.Instance, scale time.Duration) *Stream {
	inst := in.Clone()
	inst.Normalize()
	s := &Stream{jobs: inst.Jobs, scale: scale}
	if scale < 0 {
		s.scale = 0
	}
	if len(inst.Jobs) > 0 {
		s.base = inst.Jobs[0].Release
	}
	return s
}

// Len returns the total number of arrivals in the stream.
func (s *Stream) Len() int { return len(s.jobs) }

// Remaining returns how many arrivals have not been handed out yet.
func (s *Stream) Remaining() int { return len(s.jobs) - s.next }

// Next hands out the next arrival and its due offset from the
// stream's start; ok is false once the stream is exhausted.
func (s *Stream) Next() (j job.Job, due time.Duration, ok bool) {
	if s.next >= len(s.jobs) {
		return job.Job{}, 0, false
	}
	j = s.jobs[s.next]
	s.next++
	return j, s.dueOf(j), true
}

// dueOf maps a job's release to its wall-clock offset.
func (s *Stream) dueOf(j job.Job) time.Duration {
	return time.Duration((j.Release - s.base) * float64(s.scale))
}

// Rewind resets the iterator to the first arrival.
func (s *Stream) Rewind() { s.next = 0 }

// Play delivers every remaining arrival to fn, sleeping until each due
// time (measured from the moment Play is called). With scale 0 no
// sleeping happens and the whole trace is delivered back to back.
// Play stops at the first fn error or when ctx is done, returning
// ctx.Err() in the latter case; either way the stream keeps its
// position, so a caller can inspect Remaining.
func (s *Stream) Play(ctx context.Context, fn func(job.Job) error) error {
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		j, due, ok := s.Next()
		if !ok {
			return nil
		}
		if wait := due - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				s.next-- // the arrival was never delivered
				return ctx.Err()
			}
		}
		if err := fn(j); err != nil {
			return err
		}
	}
}
