// Package workload generates the job populations used by the
// experiment suite. All generators are deterministic given a seed and
// return validated, normalized instances.
//
// The value model follows the economics of Eq. (1): a job's value is a
// lognormal multiple of the energy it would cost to run the job alone
// at its density ("solo energy"). Multipliers near 1 make accept/reject
// decisions genuinely contested; large multipliers recover the
// classical finish-everything model; small ones force mass rejection.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/job"
	"repro/internal/power"
)

// Config is the shared shape of the random generators.
type Config struct {
	N     int     // number of jobs
	M     int     // processors in the produced instance
	Alpha float64 // energy exponent
	Seed  int64

	// Horizon is the release-time range [0, Horizon). Default 10.
	Horizon float64
	// SpanMin/SpanMax bound the deadline slack d-r. Defaults 0.2/3.
	SpanMin, SpanMax float64
	// WorkMin/WorkMax bound workloads. Defaults 0.1/2.
	WorkMin, WorkMax float64
	// ValueScale multiplies the lognormal solo-energy value model;
	// 0 means 1. Use math.Inf(1) for the classical finish-all model.
	ValueScale float64
	// ValueSigma is the lognormal σ of the value noise. Default 1.
	ValueSigma float64
	// TailIndex is the Pareto shape of HeavyTail workloads; smaller is
	// heavier. Default 1.5 (finite mean, infinite variance).
	TailIndex float64
}

func (c Config) withDefaults() Config {
	if c.Horizon <= 0 {
		c.Horizon = 10
	}
	if c.SpanMin <= 0 {
		c.SpanMin = 0.2
	}
	if c.SpanMax <= c.SpanMin {
		c.SpanMax = c.SpanMin + 2.8
	}
	if c.WorkMin <= 0 {
		c.WorkMin = 0.1
	}
	if c.WorkMax <= c.WorkMin {
		c.WorkMax = c.WorkMin + 1.9
	}
	if c.ValueScale == 0 { //schedlint:exactfloat unset-config sentinel
		c.ValueScale = 1
	}
	if c.ValueSigma == 0 { //schedlint:exactfloat unset-config sentinel
		c.ValueSigma = 1
	}
	if c.TailIndex <= 0 {
		c.TailIndex = 1.5
	}
	return c
}

// value draws a job value under the solo-energy model.
func (c Config) value(rng *rand.Rand, pm power.Model, w, span float64) float64 {
	if math.IsInf(c.ValueScale, 1) {
		return math.Inf(1)
	}
	solo := span * pm.Power(w/span)
	return c.ValueScale * solo * math.Exp(c.ValueSigma*rng.NormFloat64())
}

// Uniform draws releases uniformly over the horizon with uniform spans
// and workloads.
func Uniform(c Config) *job.Instance {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	pm := power.Model{Alpha: c.Alpha}
	in := &job.Instance{M: c.M, Alpha: c.Alpha}
	for i := 0; i < c.N; i++ {
		r := rng.Float64() * c.Horizon
		span := c.SpanMin + rng.Float64()*(c.SpanMax-c.SpanMin)
		w := c.WorkMin + rng.Float64()*(c.WorkMax-c.WorkMin)
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: r, Deadline: r + span, Work: w,
			Value: c.value(rng, pm, w, span),
		})
	}
	in.Normalize()
	return in
}

// Poisson draws inter-arrival times exponentially with the rate chosen
// so that N jobs fill the horizon on average.
func Poisson(c Config) *job.Instance {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	pm := power.Model{Alpha: c.Alpha}
	in := &job.Instance{M: c.M, Alpha: c.Alpha}
	rate := float64(c.N) / c.Horizon
	t := 0.0
	for i := 0; i < c.N; i++ {
		t += rng.ExpFloat64() / rate
		span := c.SpanMin + rng.Float64()*(c.SpanMax-c.SpanMin)
		w := c.WorkMin + rng.Float64()*(c.WorkMax-c.WorkMin)
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: t, Deadline: t + span, Work: w,
			Value: c.value(rng, pm, w, span),
		})
	}
	in.Normalize()
	return in
}

// Diurnal modulates a Poisson process with a sinusoidal rate (a crude
// day/night datacenter load curve): busy phases have triple the rate of
// quiet phases.
func Diurnal(c Config) *job.Instance {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	pm := power.Model{Alpha: c.Alpha}
	in := &job.Instance{M: c.M, Alpha: c.Alpha}
	baseRate := float64(c.N) / c.Horizon
	t := 0.0
	for i := 0; i < c.N; i++ {
		// Thinning: local rate in [0.5, 1.5]·base, period = horizon/2.
		for {
			t += rng.ExpFloat64() / (1.5 * baseRate)
			local := 1 + 0.5*math.Sin(4*math.Pi*t/c.Horizon)
			if rng.Float64() <= local/1.5 {
				break
			}
		}
		span := c.SpanMin + rng.Float64()*(c.SpanMax-c.SpanMin)
		w := c.WorkMin + rng.Float64()*(c.WorkMax-c.WorkMin)
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: t, Deadline: t + span, Work: w,
			Value: c.value(rng, pm, w, span),
		})
	}
	in.Normalize()
	return in
}

// Bursty releases jobs in tight clusters: quiet gaps punctuated by
// bursts of simultaneous arrivals, stressing the multiprocessor
// dedicated/pool transitions of Figure 2.
func Bursty(c Config) *job.Instance {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	pm := power.Model{Alpha: c.Alpha}
	in := &job.Instance{M: c.M, Alpha: c.Alpha}
	t := 0.0
	i := 0
	for i < c.N {
		t += rng.ExpFloat64() * c.Horizon / 5
		burst := 1 + rng.Intn(2*c.M+2)
		for b := 0; b < burst && i < c.N; b++ {
			span := c.SpanMin + rng.Float64()*(c.SpanMax-c.SpanMin)
			w := c.WorkMin + rng.Float64()*(c.WorkMax-c.WorkMin)
			in.Jobs = append(in.Jobs, job.Job{
				ID: i, Release: t, Deadline: t + span, Work: w,
				Value: c.value(rng, pm, w, span),
			})
			i++
		}
	}
	in.Normalize()
	return in
}

// HeavyTail draws Poisson arrivals with Pareto-distributed workloads
// (shape Config.TailIndex, scale WorkMin): most jobs are small, a few
// are enormous. This is the large-trace stress shape for the replay
// engine — elephant jobs create deep nesting for YDS's critical
// intervals and long pending queues for the online planners. Works are
// capped at 50× WorkMax so a single draw cannot dwarf the instance.
func HeavyTail(c Config) *job.Instance {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	pm := power.Model{Alpha: c.Alpha}
	in := &job.Instance{M: c.M, Alpha: c.Alpha}
	rate := float64(c.N) / c.Horizon
	t := 0.0
	for i := 0; i < c.N; i++ {
		t += rng.ExpFloat64() / rate
		span := c.SpanMin + rng.Float64()*(c.SpanMax-c.SpanMin)
		w := c.WorkMin * math.Pow(1-rng.Float64(), -1/c.TailIndex)
		if lim := 50 * c.WorkMax; w > lim {
			w = lim
		}
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: t, Deadline: t + span, Work: w,
			Value: c.value(rng, pm, w, span),
		})
	}
	in.Normalize()
	return in
}

// Fleet draws k independent instances from the same configuration with
// derived seeds — the unit of work engine.ReplayAll consumes. The
// generator is any of the Config-driven functions in this package.
func Fleet(gen func(Config) *job.Instance, c Config, k int) []*job.Instance {
	out := make([]*job.Instance, k)
	for i := range out {
		ci := c
		ci.Seed = c.Seed + int64(i)*2654435761 // Fibonacci-hash stride decorrelates seeds
		out[i] = gen(ci)
	}
	return out
}

// LowerBound builds the adversarial instance from the proof of
// Theorem 3 (originally Bansal, Kimbrel & Pruhs for OA): job j arrives
// at time j-1 with workload (n-j+1)^{-1/α} and common deadline n.
// Values are infinite so PD finishes everything; its cost then
// approaches α^α times the optimum as n grows.
func LowerBound(n int, alpha float64) *job.Instance {
	in := &job.Instance{M: 1, Alpha: alpha}
	for j := 1; j <= n; j++ {
		in.Jobs = append(in.Jobs, job.Job{
			ID: j - 1, Release: float64(j - 1), Deadline: float64(n),
			Work: math.Pow(float64(n-j+1), -1/alpha), Value: math.Inf(1),
		})
	}
	return in
}

// Figure3 is the two-job single-processor example reproducing the
// PD-vs-OA structural difference of Figure 3.
func Figure3() *job.Instance {
	return &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: math.Inf(1)},
		{ID: 1, Release: 0.5, Deadline: 1, Work: 1, Value: math.Inf(1)},
	}}
}

// Figure2 is a four-processor interval snapshot mirroring Figure 2.
// Before: two dedicated jobs (4.0 and 2.0) and a three-job pool at
// speed 1.35. The arrival of job 5 (work 1.9) lifts the pool average
// above 2.0, so the formerly dedicated job 1 is absorbed into the pool
// — exactly the structural transition the paper's figure illustrates.
func Figure2() (before, after *job.Instance) {
	mk := func(extra bool) *job.Instance {
		in := &job.Instance{M: 4, Alpha: 2, Jobs: []job.Job{
			{ID: 0, Release: 0, Deadline: 1, Work: 4.0, Value: math.Inf(1)},
			{ID: 1, Release: 0, Deadline: 1, Work: 2.0, Value: math.Inf(1)},
			{ID: 2, Release: 0, Deadline: 1, Work: 1.0, Value: math.Inf(1)},
			{ID: 3, Release: 0, Deadline: 1, Work: 0.9, Value: math.Inf(1)},
			{ID: 4, Release: 0, Deadline: 1, Work: 0.8, Value: math.Inf(1)},
		}}
		if extra {
			in.Jobs = append(in.Jobs, job.Job{
				ID: 5, Release: 0, Deadline: 1, Work: 1.9, Value: math.Inf(1),
			})
		}
		return in
	}
	return mk(false), mk(true)
}
