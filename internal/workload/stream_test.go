package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
)

func TestStreamOrderAndDueTimes(t *testing.T) {
	in := Bursty(Config{N: 30, M: 2, Alpha: 2, Seed: 9})
	s := NewStream(in, 10*time.Millisecond)
	if s.Len() != 30 || s.Remaining() != 30 {
		t.Fatalf("len/remaining = %d/%d", s.Len(), s.Remaining())
	}
	norm := in.Clone()
	norm.Normalize()
	var prevDue time.Duration
	for i, want := range norm.Jobs {
		j, due, ok := s.Next()
		if !ok {
			t.Fatalf("stream exhausted at %d", i)
		}
		if j != want {
			t.Fatalf("arrival %d = %+v, want %+v (normalized order)", i, j, want)
		}
		if due < prevDue {
			t.Fatalf("due times not monotone at %d: %v < %v", i, due, prevDue)
		}
		wantDue := time.Duration((j.Release - norm.Jobs[0].Release) * float64(10*time.Millisecond))
		if due != wantDue {
			t.Fatalf("arrival %d due = %v, want %v", i, due, wantDue)
		}
		prevDue = due
	}
	if _, _, ok := s.Next(); ok {
		t.Fatal("exhausted stream handed out another arrival")
	}
	s.Rewind()
	if s.Remaining() != 30 {
		t.Fatal("rewind did not reset")
	}
	// Determinism: two streams over the same instance agree exactly.
	a, b := NewStream(in, time.Second), NewStream(in, time.Second)
	for {
		ja, da, oka := a.Next()
		jb, db, okb := b.Next()
		if oka != okb || ja != jb || da != db {
			t.Fatal("streams over the same instance disagree")
		}
		if !oka {
			break
		}
	}
}

func TestStreamScaleZeroAndNegative(t *testing.T) {
	in := Uniform(Config{N: 10, M: 1, Alpha: 2, Seed: 1})
	for _, scale := range []time.Duration{0, -time.Second} {
		s := NewStream(in, scale)
		for {
			_, due, ok := s.Next()
			if !ok {
				break
			}
			if due != 0 {
				t.Fatalf("scale %v: due = %v, want 0", scale, due)
			}
		}
	}
}

// TestStreamIntoSessionMatchesBatchReplay is the streaming-vs-batch
// differential: playing a generated instance through workload.Stream
// into a live engine session must yield byte-identical results to
// batch engine replay of the same instance, for every generator shape
// and every online policy.
func TestStreamIntoSessionMatchesBatchReplay(t *testing.T) {
	gens := map[string]func(Config) *job.Instance{
		"uniform": Uniform, "poisson": Poisson, "bursty": Bursty, "heavytail": HeavyTail,
	}
	for genName, gen := range gens {
		in := gen(Config{N: 35, M: 1, Alpha: 2.3, Seed: 11, ValueScale: 2})
		for _, policy := range []string{"pd", "oa", "avr", "qoa"} {
			spec := engine.Spec{Name: policy, M: 1, Alpha: in.Alpha}
			batch, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
			if err != nil {
				t.Fatalf("%s/%s: replay: %v", genName, policy, err)
			}
			l, err := engine.NewLive(spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", genName, policy, err)
			}
			if err := NewStream(in, 0).Play(context.Background(), l.Arrive); err != nil {
				t.Fatalf("%s/%s: play: %v", genName, policy, err)
			}
			streamed, err := l.Close()
			if err != nil {
				t.Fatalf("%s/%s: close: %v", genName, policy, err)
			}
			a, b := *batch[0], *streamed
			a.MaxArrive, a.TotalArrive, a.PlanTime = 0, 0, 0
			b.MaxArrive, b.TotalArrive, b.PlanTime = 0, 0, 0
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if !bytes.Equal(aj, bj) {
				t.Fatalf("%s/%s: streamed result differs from batch replay", genName, policy)
			}
		}
	}
}

func TestStreamPlayPacesArrivals(t *testing.T) {
	// Two jobs one model-time-unit apart at 30ms per unit: the second
	// delivery must come no earlier than its due time.
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 1},
		{ID: 1, Release: 1, Deadline: 3, Work: 1},
	}}
	const scale = 30 * time.Millisecond
	start := time.Now()
	var stamps []time.Duration
	if err := NewStream(in, scale).Play(context.Background(), func(job.Job) error {
		stamps = append(stamps, time.Since(start))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 2 {
		t.Fatalf("delivered %d arrivals", len(stamps))
	}
	if stamps[1] < scale {
		t.Fatalf("second arrival delivered at %v, before its due time %v", stamps[1], scale)
	}
}

func TestStreamPlayStopsOnErrorAndCancel(t *testing.T) {
	in := Uniform(Config{N: 20, M: 1, Alpha: 2, Seed: 5})
	boom := errors.New("downstream refused")
	s := NewStream(in, 0)
	n := 0
	err := s.Play(context.Background(), func(job.Job) error {
		n++
		if n == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want fn error back, got %v", err)
	}
	if s.Remaining() != 20-4 {
		t.Fatalf("remaining = %d after stopping at 4", s.Remaining())
	}

	// Cancellation mid-sleep keeps the undelivered arrival.
	slow := NewStream(in, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err = slow.Play(ctx, func(job.Job) error { delivered++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if slow.Remaining() != slow.Len()-delivered {
		t.Fatalf("remaining %d + delivered %d != len %d", slow.Remaining(), delivered, slow.Len())
	}
}
