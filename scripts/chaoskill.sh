#!/usr/bin/env sh
# chaoskill.sh — SIGKILL a durable schedd at random points under load,
# restart it, and let recovery prove itself. A shell-level companion
# to the in-tree crash differential (cmd/schedd TestEndToEndCrashRecovery):
# that test pins byte-identical recovery; this script shakes a real
# deployment-shaped loop for as many rounds as you like.
#
#   ./scripts/chaoskill.sh [rounds] [data-dir]
#
# Each round: boot schedd on a random port against the same data dir,
# start a loadgen stream against it, sleep a random 1-3s slice of the
# run, SIGKILL the daemon mid-ingest, and boot again — the next boot's
# "recovered N sessions" line is the health signal. Any boot that
# refuses recovery (corruption beyond a torn tail) exits this script
# non-zero with the daemon's complaint. The final round drains
# cleanly and expects the last boot to find zero sessions.
set -eu
cd "$(dirname "$0")/.."

rounds="${1:-5}"
dir="${2:-$(mktemp -d)}"
log="$(mktemp)"
trap 'rm -f "$log"; [ -n "${pid:-}" ] && kill -9 "$pid" 2>/dev/null || true' EXIT

go build -o /tmp/schedd.chaos ./cmd/schedd
go build -o /tmp/loadgen.chaos ./cmd/loadgen

echo "chaoskill: $rounds rounds over $dir" >&2
i=0
while [ "$i" -lt "$rounds" ]; do
  i=$((i + 1))
  : > "$log"
  /tmp/schedd.chaos -addr 127.0.0.1:0 -data-dir "$dir" \
    -checkpoint-every 500 -drain-timeout 10s > "$log" 2>&1 &
  pid=$!
  # Wait for the post-recovery readiness line; a refused recovery
  # exits the daemon first, and that is this script's failure.
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^schedd: listening on //p' "$log")"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "chaoskill: round $i: daemon refused to boot:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "chaoskill: round $i: no listen line" >&2; cat "$log" >&2; exit 1; }
  sed -n 's/^schedd: \(recovered .*\)$/chaoskill: round '"$i"': \1/p' "$log" >&2

  /tmp/loadgen.chaos -url "http://$addr" -prefix "r$i" -tenants 4 -n 2000 -scale 5ms >/dev/null 2>&1 &
  lpid=$!
  if [ "$i" -lt "$rounds" ]; then
    sleep "$(awk -v s="$i" 'BEGIN{srand(s); printf "%.1f", 1+2*rand()}')"
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true
    kill "$lpid" 2>/dev/null || true
    wait "$lpid" 2>/dev/null || true
    echo "chaoskill: round $i: killed mid-ingest" >&2
  else
    # Last round: let the load finish, then drain cleanly.
    wait "$lpid" || true
    kill -TERM "$pid"
    wait "$pid" || { echo "chaoskill: clean drain failed:" >&2; cat "$log" >&2; exit 1; }
    echo "chaoskill: final drain ok" >&2
  fi
done

# One more boot: a drained daemon leaves nothing to recover.
/tmp/schedd.chaos -addr 127.0.0.1:0 -data-dir "$dir" > "$log" 2>&1 &
pid=$!
for _ in $(seq 1 100); do
  grep -q '^schedd: listening on ' "$log" && break
  sleep 0.1
done
if ! grep -q '^schedd: recovered 0 sessions' "$log"; then
  echo "chaoskill: post-drain boot still recovered state:" >&2
  cat "$log" >&2
  exit 1
fi
kill -TERM "$pid" && wait "$pid" || true
echo "chaoskill: $rounds rounds survived" >&2
