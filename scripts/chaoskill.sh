#!/usr/bin/env sh
# chaoskill.sh — SIGKILL a durable schedd at random points under load,
# restart it, and let recovery prove itself. A shell-level companion
# to the in-tree crash differential (cmd/schedd TestEndToEndCrashRecovery):
# that test pins byte-identical recovery; this script shakes a real
# deployment-shaped loop for as many rounds as you like.
#
#   ./scripts/chaoskill.sh [rounds] [data-dir]
#   ./scripts/chaoskill.sh cluster
#   ./scripts/chaoskill.sh netchaos
#
# Each round: boot schedd on a random port against the same data dir,
# start a loadgen stream against it, sleep a random 1-3s slice of the
# run, SIGKILL the daemon mid-ingest, and boot again — the next boot's
# "recovered N sessions" line is the health signal. Any boot that
# refuses recovery (corruption beyond a torn tail) exits this script
# non-zero with the daemon's complaint. The final round drains
# cleanly and expects the last boot to find zero sessions.
#
# Netchaos mode shakes the ingest wire: one durable worker on a fixed
# port, loadgen routed through its in-process fault proxy (-chaos:
# duplicated connections, dropped responses, stalls, truncations),
# and the worker SIGKILLed mid-stream and rebooted on the same
# address. Producer stamping (loadgen's default) makes every retry
# idempotent, so health is loadgen exiting zero — every tenant's
# result verified despite the faults and the kill — and a final boot
# finding nothing left to recover.
#
# Cluster mode shakes the control plane instead: a primary controller
# with a hot standby and two durable workers, loadgen streaming at the
# workers directly (-endpoints — the data plane must not care who
# governs), then the primary is SIGKILLed right after a rebalance is
# kicked off. Health is the standby taking over (topology role
# "primary") with both workers following it within a few leases, and
# loadgen finishing with verified results throughout.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-}"

go build -o /tmp/schedd.chaos ./cmd/schedd
go build -o /tmp/loadgen.chaos ./cmd/loadgen

# wait_line FILE PATTERN [tries] — poll a daemon log for its readiness
# (or takeover) line.
wait_line() {
  wl_file="$1"; wl_pat="$2"; wl_tries="${3:-100}"
  while [ "$wl_tries" -gt 0 ]; do
    grep -q "$wl_pat" "$wl_file" && return 0
    wl_tries=$((wl_tries - 1))
    sleep 0.1
  done
  return 1
}

if [ "$mode" = "netchaos" ]; then
  port=$((20000 + $$ % 20000))
  root="$(mktemp -d)"
  log="$root/schedd.log"
  trap 'kill -9 $(jobs -p) 2>/dev/null || true' EXIT

  # A fixed port, not :0 — loadgen's fault proxy resolves the target
  # once, and the rebooted worker must come back where the proxy
  # points.
  boot() {
    : > "$log"
    /tmp/schedd.chaos -addr "127.0.0.1:$port" -data-dir "$root/data" \
      -checkpoint-every 500 -shed-after 2s -drain-timeout 10s > "$log" 2>&1 &
    pid=$!
    wait_line "$log" '^schedd: listening on ' \
      || { echo "chaoskill[netchaos]: worker never listened" >&2; cat "$log" >&2; exit 1; }
    sed -n 's/^schedd: \(recovered .*\)$/chaoskill[netchaos]: \1/p' "$log" >&2
  }
  boot
  echo "chaoskill[netchaos]: worker on :$port, faults on the wire" >&2

  /tmp/loadgen.chaos -url "http://127.0.0.1:$port" -prefix nc \
    -tenants 4 -n 3000 -scale 2ms -batch 8 -retries 16 \
    -chaos 'duplicate=0.15,drop-response=0.1,delay=0.05,truncate=0.03' \
    -chaos-seed "$$" > "$root/loadgen.out" 2>&1 &
  lpid=$!
  sleep 2

  kill -9 "$pid"
  wait "$pid" 2>/dev/null || true
  echo "chaoskill[netchaos]: worker SIGKILLed mid-stream" >&2
  boot

  # The stamped retries must ride out every fault and the reboot:
  # loadgen exits non-zero on any unverified tenant.
  wait "$lpid" \
    || { echo "chaoskill[netchaos]: loadgen failed across the chaos:" >&2; cat "$root/loadgen.out" >&2; exit 1; }
  sed -n '/^resilience:/p;/^chaos:/p' "$root/loadgen.out" >&2

  kill -TERM "$pid"
  wait "$pid" || { echo "chaoskill[netchaos]: clean drain failed:" >&2; cat "$log" >&2; exit 1; }

  # Every tenant closed, so the next boot starts from a clean slate.
  boot
  grep -q '^schedd: recovered 0 sessions' "$log" \
    || { echo "chaoskill[netchaos]: post-run boot still recovered state:" >&2; cat "$log" >&2; exit 1; }
  kill -TERM "$pid" && wait "$pid" || true
  echo "chaoskill[netchaos]: exactly-once survived the wire and the kill" >&2
  exit 0
fi

if [ "$mode" = "cluster" ]; then
  base=$((20000 + $$ % 20000))
  pport=$base; sport=$((base + 1)); w1port=$((base + 2)); w2port=$((base + 3))
  root="$(mktemp -d)"
  plog="$root/primary.log"; slog="$root/standby.log"
  trap 'kill -9 $(jobs -p) 2>/dev/null || true' EXIT

  /tmp/schedd.chaos -controller -addr "127.0.0.1:$pport" \
    -advertise "http://127.0.0.1:$pport" -lease 1s \
    -data-dir "$root/ctl-primary" > "$plog" 2>&1 &
  ppid=$!
  wait_line "$plog" '^schedd: controller listening on ' \
    || { echo "chaoskill: primary never listened" >&2; cat "$plog" >&2; exit 1; }
  /tmp/schedd.chaos -controller -standby "http://127.0.0.1:$pport" \
    -addr "127.0.0.1:$sport" -advertise "http://127.0.0.1:$sport" -lease 1s \
    -data-dir "$root/ctl-standby" > "$slog" 2>&1 &
  wait_line "$slog" '^schedd: standby controller listening on ' \
    || { echo "chaoskill: standby never listened" >&2; cat "$slog" >&2; exit 1; }
  for w in 1 2; do
    eval port=\$w${w}port
    /tmp/schedd.chaos -addr "127.0.0.1:$port" -data-dir "$root/w$w" \
      -join "http://127.0.0.1:$pport" -node-name "w$w" \
      -drain-timeout 10s > "$root/w$w.log" 2>&1 &
  done
  # Both workers alive on the primary, and the standby tailing it.
  for _ in $(seq 1 100); do
    alive="$(curl -fsS "http://127.0.0.1:$pport/v1/cluster" 2>/dev/null \
      | grep -o '"alive":true' | wc -l)"
    [ "$alive" -eq 2 ] && break
    sleep 0.1
  done
  [ "$alive" -eq 2 ] || { echo "chaoskill: workers never joined" >&2; exit 1; }
  echo "chaoskill[cluster]: primary :$pport, standby :$sport, workers :$w1port :$w2port" >&2

  # The data plane streams at the workers directly; the control plane
  # being beheaded below must not cost it a single arrival.
  /tmp/loadgen.chaos -endpoints "http://127.0.0.1:$w1port,http://127.0.0.1:$w2port" \
    -prefix chaos -tenants 4 -n 4000 -scale 2ms >/dev/null 2>&1 &
  lpid=$!
  sleep 1

  # Kick a rebalance and behead the primary mid-flight.
  curl -fsS -X POST "http://127.0.0.1:$pport/v1/cluster/rebalance" -d '{}' >/dev/null 2>&1 || true
  kill -9 "$ppid"
  wait "$ppid" 2>/dev/null || true
  echo "chaoskill[cluster]: primary SIGKILLed mid-rebalance" >&2

  # The standby must take over and the workers must follow it.
  wait_line "$slog" '^schedd: controller takeover ' 150 \
    || { echo "chaoskill: standby never took over" >&2; cat "$slog" >&2; exit 1; }
  role="$(curl -fsS "http://127.0.0.1:$sport/v1/cluster/topology" | grep -o '"role":"primary"')" \
    || { echo "chaoskill: takeover line printed but role is not primary" >&2; exit 1; }
  for _ in $(seq 1 150); do
    alive="$(curl -fsS "http://127.0.0.1:$sport/v1/cluster" 2>/dev/null \
      | grep -o '"alive":true' | wc -l)"
    [ "$alive" -eq 2 ] && break
    sleep 0.1
  done
  [ "$alive" -eq 2 ] || { echo "chaoskill: workers never followed the new primary" >&2; exit 1; }
  echo "chaoskill[cluster]: standby took over ($role), both workers followed" >&2

  wait "$lpid" || { echo "chaoskill: loadgen failed across the failover" >&2; exit 1; }
  echo "chaoskill[cluster]: loadgen finished verified across the failover" >&2
  exit 0
fi

rounds="${1:-5}"
dir="${2:-$(mktemp -d)}"
log="$(mktemp)"
trap 'rm -f "$log"; [ -n "${pid:-}" ] && kill -9 "$pid" 2>/dev/null || true' EXIT

echo "chaoskill: $rounds rounds over $dir" >&2
i=0
while [ "$i" -lt "$rounds" ]; do
  i=$((i + 1))
  : > "$log"
  /tmp/schedd.chaos -addr 127.0.0.1:0 -data-dir "$dir" \
    -checkpoint-every 500 -drain-timeout 10s > "$log" 2>&1 &
  pid=$!
  # Wait for the post-recovery readiness line; a refused recovery
  # exits the daemon first, and that is this script's failure.
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^schedd: listening on //p' "$log")"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "chaoskill: round $i: daemon refused to boot:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "chaoskill: round $i: no listen line" >&2; cat "$log" >&2; exit 1; }
  sed -n 's/^schedd: \(recovered .*\)$/chaoskill: round '"$i"': \1/p' "$log" >&2

  /tmp/loadgen.chaos -url "http://$addr" -prefix "r$i" -tenants 4 -n 2000 -scale 5ms >/dev/null 2>&1 &
  lpid=$!
  if [ "$i" -lt "$rounds" ]; then
    sleep "$(awk -v s="$i" 'BEGIN{srand(s); printf "%.1f", 1+2*rand()}')"
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true
    kill "$lpid" 2>/dev/null || true
    wait "$lpid" 2>/dev/null || true
    echo "chaoskill: round $i: killed mid-ingest" >&2
  else
    # Last round: let the load finish, then drain cleanly.
    wait "$lpid" || true
    kill -TERM "$pid"
    wait "$pid" || { echo "chaoskill: clean drain failed:" >&2; cat "$log" >&2; exit 1; }
    echo "chaoskill: final drain ok" >&2
  fi
done

# One more boot: a drained daemon leaves nothing to recover.
/tmp/schedd.chaos -addr 127.0.0.1:0 -data-dir "$dir" > "$log" 2>&1 &
pid=$!
for _ in $(seq 1 100); do
  grep -q '^schedd: listening on ' "$log" && break
  sleep 0.1
done
if ! grep -q '^schedd: recovered 0 sessions' "$log"; then
  echo "chaoskill: post-drain boot still recovered state:" >&2
  cat "$log" >&2
  exit 1
fi
kill -TERM "$pid" && wait "$pid" || true
echo "chaoskill: $rounds rounds survived" >&2
