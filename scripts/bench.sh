#!/usr/bin/env sh
# bench.sh — run the hot-path benchmarks and write the JSON perf
# trajectory point the repo commits as BENCH_*.json.
#
#   ./scripts/bench.sh [output.json]
#
# BENCH overrides the benchmark regex (default: the per-arrival
# session benchmark pinning the online hot path, the serve-ingest
# benchmark pinning end-to-end arrivals/sec through the HTTP stack,
# and the cluster-ingest series pinning aggregate scale-out across
# 2-4 workers behind a live controller), BENCHTIME the -benchtime
# (e.g. 1x for a CI smoke run, 1s for a real measurement).
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr10.json}"
bench="${BENCH:-BenchmarkSessionPerArrival|BenchmarkServeIngest|BenchmarkClusterIngest}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
# No pipeline around go test: a pipe would hand the exit status to the
# downstream command (POSIX sh has no pipefail) and a b.Fatal in one
# benchmark case must fail this script — that is the smoke job's point.
if ! go test -run '^$' -bench "$bench" -benchmem -benchtime "$benchtime" -count 1 . > "$tmp" 2>&1; then
  cat "$tmp" >&2
  echo "bench.sh: go test -bench failed" >&2
  exit 1
fi
cat "$tmp" >&2
go run ./cmd/benchjson < "$tmp" > "$out"
echo "bench.sh: wrote $out" >&2
