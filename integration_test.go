package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cll"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/moa"
	"repro/internal/numeric"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
	"repro/internal/yds"
)

// TestAlgorithmMatrix is the end-to-end integration test: every
// algorithm × every workload generator, every produced schedule
// verified, every cost sandwiched between the dual lower bound and the
// reject-everything upper bound.
func TestAlgorithmMatrix(t *testing.T) {
	gens := map[string]func(workload.Config) *job.Instance{
		"uniform": workload.Uniform,
		"poisson": workload.Poisson,
		"diurnal": workload.Diurnal,
		"bursty":  workload.Bursty,
	}
	for genName, gen := range gens {
		for _, m := range []int{1, 3} {
			cfg := workload.Config{N: 25, M: m, Alpha: 2.2, Seed: 77, ValueScale: 2}
			in := gen(cfg)
			pm := power.Model{Alpha: in.Alpha}

			// PD: values respected, certificate must hold.
			res, err := core.Run(in)
			if err != nil {
				t.Fatalf("%s m=%d PD: %v", genName, m, err)
			}
			if err := sched.Verify(in, res.Schedule); err != nil {
				t.Fatalf("%s m=%d PD verify: %v", genName, m, err)
			}
			bound := math.Pow(in.Alpha, in.Alpha)
			if !numeric.LessEqual(res.Cost, bound*res.Dual, 1e-6) {
				t.Fatalf("%s m=%d: certificate violated", genName, m)
			}
			if !numeric.LessEqual(res.Cost, in.TotalValue(), 1e-6) && res.Cost > in.TotalValue() {
				t.Fatalf("%s m=%d: PD cost %v above reject-everything %v",
					genName, m, res.Cost, in.TotalValue())
			}

			// CLL on single processor.
			if m == 1 {
				cl, err := cll.Run(in, pm)
				if err != nil {
					t.Fatalf("%s CLL: %v", genName, err)
				}
				if err := sched.Verify(in, cl.Schedule); err != nil {
					t.Fatalf("%s CLL verify: %v", genName, err)
				}
				if !numeric.LessEqual(res.Dual, cl.Cost, 1e-6) {
					t.Fatalf("%s: dual bound above CLL cost", genName)
				}
			}

			// Finish-all variants for the classical algorithms.
			fa := in.Clone()
			for i := range fa.Jobs {
				fa.Jobs[i].Value = math.Inf(1)
			}
			ms, err := moa.Run(fa)
			if err != nil {
				t.Fatalf("%s m=%d MOA: %v", genName, m, err)
			}
			if err := sched.Verify(fa, ms); err != nil {
				t.Fatalf("%s m=%d MOA verify: %v", genName, m, err)
			}
			sol, err := opt.SolveAccepted(fa, nil)
			if err != nil {
				t.Fatalf("%s m=%d OPT: %v", genName, m, err)
			}
			if ms.Energy(pm) < sol.Energy*(1-1e-6) {
				t.Fatalf("%s m=%d: MOA beat the offline optimum", genName, m)
			}
			if m == 1 {
				for algName, alg := range map[string]func(*job.Instance) (*sched.Schedule, error){
					"yds": yds.YDS, "oa": yds.OA, "avr": yds.AVR,
				} {
					s, err := alg(fa)
					if err != nil {
						t.Fatalf("%s %s: %v", genName, algName, err)
					}
					if err := sched.Verify(fa, s); err != nil {
						t.Fatalf("%s %s verify: %v", genName, algName, err)
					}
					if s.Energy(pm) < sol.Energy*(1-1e-5) {
						t.Fatalf("%s %s: energy %v below optimum %v",
							genName, algName, s.Energy(pm), sol.Energy)
					}
				}
			}
		}
	}
}

// TestTraceRoundTripThroughScheduler exercises the full CLI data path:
// generate → serialize → parse → schedule → verify, in both formats.
func TestTraceRoundTripThroughScheduler(t *testing.T) {
	in := workload.Bursty(workload.Config{N: 20, M: 2, Alpha: 2, Seed: 123})

	var jsonBuf bytes.Buffer
	if err := in.WriteTrace(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := job.ReadTrace(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}

	var csvBuf bytes.Buffer
	if err := in.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := job.ReadCSV(&csvBuf, in.M, in.Alpha)
	if err != nil {
		t.Fatal(err)
	}

	r1, err := core.Run(fromJSON)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Run(fromCSV)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := core.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Close(r0.Cost, r1.Cost, 1e-9) || !numeric.Close(r0.Cost, r2.Cost, 1e-9) {
		t.Fatalf("costs diverge across formats: %v json=%v csv=%v", r0.Cost, r1.Cost, r2.Cost)
	}
}

// TestDualCertificateChain checks the full inequality chain on one
// instance: g(λ̃) ≤ g(tightened) ≤ OPT ≤ cost(PD) ≤ α^α·g(λ̃).
func TestDualCertificateChain(t *testing.T) {
	in := workload.Uniform(workload.Config{N: 9, M: 2, Alpha: 2, Seed: 5})
	res, err := core.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	lam := map[int]float64{}
	for _, d := range res.Decisions {
		lam[d.JobID] = d.Lambda
	}
	_, g1 := opt.TightenDual(in, lam, 5)
	best, err := opt.Integral(in)
	if err != nil {
		t.Fatal(err)
	}
	chain := []struct {
		name string
		a, b float64
	}{
		{"g(λ̃) ≤ g(tight)", res.Dual, g1},
		{"g(tight) ≤ OPT", g1, best.Cost},
		{"OPT ≤ cost(PD)", best.Cost, res.Cost},
		{"cost(PD) ≤ α^α·g(λ̃)", res.Cost, 4 * res.Dual},
	}
	for _, c := range chain {
		if !numeric.LessEqual(c.a, c.b, 1e-6) {
			t.Fatalf("%s violated: %v > %v", c.name, c.a, c.b)
		}
	}
}
