package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestRunAgainstLiveHost(t *testing.T) {
	srv := httptest.NewServer(serve.NewHandler(serve.NewHost(serve.Config{})))
	defer srv.Close()

	var out, errs bytes.Buffer
	err := run(context.Background(), []string{
		"-url", srv.URL, "-tenants", "3", "-n", "8", "-kind", "bursty",
		"-algo", "qoa", "-alpha", "2.5", "-scale", "0", "-v",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errs.String())
	}
	text := out.String()
	for _, want := range []string{"3 tenants", "24 arrivals", "latency (s): n=24", "client allocs/arrival", "per-tenant results", "lg-2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output misses %q:\n%s", want, text)
		}
	}
}

func TestRunFlagAndKindErrors(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run(context.Background(), []string{"-kind", "nope"}, &out, &errs); err == nil ||
		!strings.Contains(err.Error(), "unknown workload kind") {
		t.Fatalf("bad kind: %v", err)
	}
	if err := run(context.Background(), []string{"-bogus"}, &out, &errs); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSurfacesServerRefusals(t *testing.T) {
	// A host with a one-session limit: two of three tenants are
	// refused admission; the error must carry the server's message.
	srv := httptest.NewServer(serve.NewHandler(serve.NewHost(serve.Config{MaxSessions: 1})))
	defer srv.Close()
	var out, errs bytes.Buffer
	// -retries 0: with retries on, the refusal is transient — the
	// retried create wins the slot a finished tenant freed.
	err := run(context.Background(), []string{
		"-url", srv.URL, "-tenants", "3", "-n", "4", "-scale", "0", "-retries", "0",
	}, &out, &errs)
	if err == nil || !strings.Contains(err.Error(), "session limit reached") {
		t.Fatalf("want admission refusal surfaced, got %v", err)
	}
}

// TestRunBatchedThroughputMode drives the sustained-throughput path:
// NDJSON bodies of -batch arrivals per request against a live host,
// with the server-reported throughput line present (the handler's
// /metrics is live) and every arrival still accounted per-arrival in
// the latency histogram.
func TestRunBatchedThroughputMode(t *testing.T) {
	srv := httptest.NewServer(serve.NewHandler(serve.NewHost(serve.Config{})))
	defer srv.Close()

	var out, errs bytes.Buffer
	err := run(context.Background(), []string{
		"-url", srv.URL, "-tenants", "2", "-n", "100", "-kind", "heavytail",
		"-algo", "oa", "-alpha", "2", "-scale", "0", "-batch", "32",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errs.String())
	}
	text := out.String()
	for _, want := range []string{"2 tenants", "200 arrivals", "latency (s): n=200", "server-reported:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output misses %q:\n%s", want, text)
		}
	}
}

// TestRunChaosMode routes the load through the in-process fault proxy
// with aggressive duplication and lost acks; producer stamping (on by
// default) must keep every tenant's run exactly-once — no partial
// accepts, no errors — and the chaos/resilience lines must report
// what happened.
func TestRunChaosMode(t *testing.T) {
	srv := httptest.NewServer(serve.NewHandler(serve.NewHost(serve.Config{ShedAfter: time.Second})))
	defer srv.Close()

	var out, errs bytes.Buffer
	err := run(context.Background(), []string{
		"-url", srv.URL, "-tenants", "2", "-n", "60", "-kind", "poisson",
		"-algo", "oa", "-alpha", "2.2", "-scale", "0", "-batch", "16",
		"-chaos", "duplicate=0.3,drop-response=0.15", "-chaos-seed", "7",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run under chaos: %v\nstderr: %s", err, errs.String())
	}
	text := out.String()
	for _, want := range []string{"2 tenants", "120 arrivals", "chaos: proxying", "resilience:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output misses %q:\n%s", want, text)
		}
	}
}
