// Command experiments regenerates every table and figure of the
// reproduction (T1-T11, F2, F3 — see DESIGN.md for the index) and
// prints them to stdout.
//
// Usage:
//
//	experiments [-seeds N] [-n JOBS] [-parallel W]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	seeds := flag.Int("seeds", experiments.Default.Seeds, "random repetitions per configuration")
	n := flag.Int("n", experiments.Default.N, "jobs per random instance")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	sc := experiments.Scale{Seeds: *seeds, N: *n}
	var err error
	if *parallel == 1 {
		err = experiments.RunAll(os.Stdout, sc)
	} else {
		err = experiments.RunAllParallel(os.Stdout, sc, *parallel)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
