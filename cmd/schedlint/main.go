// Command schedlint runs the repo's custom analyzers (hotalloc,
// floateq, lockdiscipline, pooledbuf) over module packages.
//
// Standalone:
//
//	go run ./cmd/schedlint ./...
//	go run ./cmd/schedlint -only hotalloc,floateq ./internal/yds
//
// As a vet tool (best effort — parses the unitchecker .cfg protocol,
// then re-analyzes the whole module so cross-package facts exist, and
// reports only the cfg package's diagnostics):
//
//	go vet -vettool=$(go env GOPATH)/bin/schedlint ./...
//
// Exit status: 0 clean, 1 diagnostics found, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
	"repro/internal/lint/floateq"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/lockdiscipline"
	"repro/internal/lint/pooledbuf"
)

var all = []*analysis.Analyzer{
	hotalloc.Analyzer,
	floateq.Analyzer,
	lockdiscipline.Analyzer,
	pooledbuf.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("schedlint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	vflag := fs.String("V", "", "version protocol for go vet (-V=full)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// go vet probes the tool with -V=full before handing it a .cfg.
	if *vflag == "full" {
		fmt.Printf("schedlint version devel\n")
		return 0
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "schedlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetCfg(rest[0], analyzers)
	}
	return runPatterns(rest, analyzers)
}

func runPatterns(patterns []string, analyzers []*analysis.Analyzer) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}
	root, err := driver.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}
	fset := token.NewFileSet()
	module, pkgs, err := driver.Load(fset, root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}
	diags := driver.Analyze(fset, module, pkgs, analyzers)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		rel, err := filepath.Rel(wd, pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = pos.Filename
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the subset of the unitchecker .cfg payload schedlint
// needs to locate the package under analysis.
type vetConfig struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// runVetCfg handles one `go vet -vettool` unit: it re-loads the whole
// module (the unit's export-data import map is useless to a
// source-based checker, and facts must flow from dependencies anyway)
// and reports only the diagnostics that land in the unit's package.
func runVetCfg(path string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: parsing %s: %v\n", path, err)
		return 2
	}
	root, err := driver.FindModuleRoot(cfg.Dir)
	if err != nil {
		// Package outside any module we can analyze (e.g. stdlib vet
		// units): nothing to say.
		return 0
	}
	fset := token.NewFileSet()
	module, pkgs, err := driver.Load(fset, root, []string{cfg.Dir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}
	diags := driver.Analyze(fset, module, pkgs, analyzers)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
