// Control-plane durability end to end: a real controller SIGKILLed
// and restarted from its -data-dir recovers the placement map
// byte-identically (including mid-migration, where the crash-open
// intent is resolved on boot); a corrupted controller WAL refuses to
// boot non-zero; and a standby controller takes over a SIGKILLed
// primary with the workers following it on their own — with every
// tenant's final verified Result byte-identical to an uninterrupted
// single-engine replay throughout.
//
// Test names keep the TestEndToEnd prefix so CI's race job
// (-run 'TestEndToEnd') exercises them under the race detector.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/workload"
)

// freePort reserves a port by binding and releasing it — controller
// restarts must come back on the same address so workers and standbys
// find them again.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// startWatchedDaemon is startDaemonLine plus an environment and
// post-readiness line capture (p.sawLine), for processes whose later
// output matters — a standby's takeover line, a failpoint's last gasp.
func startWatchedDaemon(t *testing.T, bin, prefix string, env []string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "schedd: recovered ") {
			p.recovered = line
		}
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			if i := strings.Index(rest, " ("); i >= 0 {
				rest = rest[:i]
			}
			p.base = "http://" + rest
			break
		}
	}
	if p.base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon never reported %q (scan err %v)", prefix, sc.Err())
	}
	go func() {
		for sc.Scan() {
			p.mu.Lock()
			p.lines = append(p.lines, sc.Text())
			p.mu.Unlock()
		}
	}()
	return p
}

// placementView canonicalizes the durable heart of GET
// /v1/cluster/state — node table, placement map, open intents, parked
// migrations — for byte-level comparison across crashes and
// failovers (epoch and seq legitimately change on a new reign).
func placementView(t *testing.T, base string) []byte {
	t.Helper()
	code, body := httpDo(t, "GET", base+"/v1/cluster/state", nil)
	if code != http.StatusOK {
		t.Fatalf("state: %d %s", code, body)
	}
	var view struct {
		Nodes     []json.RawMessage `json:"nodes"`
		Placement map[string]string `json:"placement"`
		Intents   []json.RawMessage `json:"intents"`
		Parked    []json.RawMessage `json:"parked"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// closeDifferential closes the tenant through the controller and pins
// its relayed verified Result byte-identical (modulo wall-clock
// fields) to an uninterrupted single-engine replay of its workload.
func closeDifferential(t *testing.T, base, id string, in *job.Instance, spec engine.Spec) {
	t.Helper()
	code, body := httpDo(t, "DELETE", base+"/v1/sessions/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("close %s: %d %s", id, code, body)
	}
	var closed struct {
		Result *engine.Result `json:"result"`
	}
	if err := json.Unmarshal(body, &closed); err != nil || closed.Result == nil {
		t.Fatalf("close %s response %s: %v", id, body, err)
	}
	wantRes, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	mask := func(r *engine.Result) []byte {
		cp := *r
		cp.MaxArrive, cp.TotalArrive, cp.PlanTime = 0, 0, 0
		js, _ := json.Marshal(&cp)
		return js
	}
	want := mask(wantRes[0])
	var wantRT engine.Result
	if err := json.Unmarshal(want, &wantRT); err != nil {
		t.Fatal(err)
	}
	want, _ = json.Marshal(&wantRT)
	if got := mask(closed.Result); !bytes.Equal(got, want) {
		t.Fatalf("tenant %s result differs from uninterrupted replay:\n got %s\nwant %s", id, got, want)
	}
}

func TestEndToEndControllerCrash(t *testing.T) {
	bin := buildSchedd(t)
	port := freePort(t)
	cdir := t.TempDir()
	cargs := []string{"-controller", "-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-lease", "1s", "-data-dir", cdir}
	ctrl := startController(t, bin, cargs...)

	dirs := map[string]string{"w1": t.TempDir(), "w2": t.TempDir()}
	wargs := func(name string) []string {
		return []string{
			"-addr", "127.0.0.1:0", "-data-dir", dirs[name],
			"-join", ctrl.base, "-node-name", name,
			"-fsync-interval", "2ms", "-drain-timeout", "10s",
		}
	}
	startSchedd(t, bin, wargs("w1")...)
	startSchedd(t, bin, wargs("w2")...)
	waitTopology(t, ctrl.base, "both workers alive", func(top clusterTopo) bool {
		alive := 0
		for _, n := range top.Nodes {
			if n.Alive {
				alive++
			}
		}
		return alive == 2
	})

	const tenants = 3
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.2}
	ids := make([]string, tenants)
	ins := make([]*job.Instance, tenants)
	cut := make(map[string]int, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("cc-%d", i)
		ins[i] = workload.Poisson(workload.Config{
			N: 90, M: 1, Alpha: 2.2, Seed: 311 + int64(i)*104729, ValueScale: 2,
		})
		create, _ := json.Marshal(map[string]any{"id": ids[i], "spec": spec})
		if code, body := httpDo(t, "POST", ctrl.base+"/v1/sessions", create); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", ids[i], code, body)
		}
		cut[ids[i]] = len(ins[i].Jobs) / 2
		feedThrough(t, ctrl.base, ids[i], ins[i].Jobs[:cut[ids[i]]])
	}
	for _, id := range ids {
		settledSnapshot(t, ctrl.base, id, cut[id])
	}
	ref := placementView(t, ctrl.base)

	// Crash #1: SIGKILL the controller between migrations. The restart
	// recovers the placement map byte-identically from its WAL — and
	// the workers, whose node table also survived, keep their leases.
	ctrl.kill(t)
	ctrl = startController(t, bin, cargs...)
	if got := placementView(t, ctrl.base); !bytes.Equal(got, ref) {
		t.Fatalf("recovered placement differs:\n got %s\nwant %s", got, ref)
	}
	// Tenants keep serving through the recovered controller.
	for _, id := range ids {
		settledSnapshot(t, ctrl.base, id, cut[id])
	}

	// Crash #2: mid-migration. A failpoint controller crashes the
	// instant the intent-begin record is durable — before any byte of
	// the tenant's WAL moves — so the restart must find the open intent
	// and roll it back (the target never imported), leaving the tenant
	// serving where its state is.
	ctrl.stop(t)
	ctrl = startWatchedDaemon(t, bin, "schedd: controller listening on ",
		[]string{"SCHEDD_CRASH_AFTER_INTENT=1"}, cargs...)
	if got := placementView(t, ctrl.base); !bytes.Equal(got, ref) {
		t.Fatalf("placement after orderly restart differs:\n got %s\nwant %s", got, ref)
	}
	placed := getPlacements(t, ctrl.base)
	victim := ids[0]
	target := "w1"
	if placed[victim] == "w1" {
		target = "w2"
	}
	move, _ := json.Marshal(map[string]string{"tenant": victim, "to": target})
	req, err := http.NewRequest(http.MethodPost, ctrl.base+"/v1/cluster/move", bytes.NewReader(move))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		// The process died mid-handler; any response is the connection
		// being torn down.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if code := ctrl.waitExit(t); code != 7 {
		t.Fatalf("failpoint controller exited %d, want 7", code)
	}

	// The restart finds the crash-open intent in its WAL, queues its
	// resolution, probes the target (which never imported: 404) and
	// rolls back. Placement ends exactly where it started.
	ctrl = startController(t, bin, cargs...)
	waitMigrations(t, ctrl.base+"/v1/cluster/migrations", "crash-open intent resolved")
	if got := placementView(t, ctrl.base); !bytes.Equal(got, ref) {
		t.Fatalf("placement after mid-migration crash recovery differs:\n got %s\nwant %s", got, ref)
	}

	// Life goes on: the interrupted tenant migrates for real this time,
	// every stream finishes, and every Result matches the
	// uninterrupted reference byte for byte.
	code, body := httpDo(t, "POST", ctrl.base+"/v1/cluster/move", move)
	if code != http.StatusOK {
		t.Fatalf("move after recovery: %d %s", code, body)
	}
	if got := getPlacements(t, ctrl.base)[victim]; got != target {
		t.Fatalf("tenant %s on %q after move, want %q", victim, got, target)
	}
	for i, id := range ids {
		feedThrough(t, ctrl.base, id, ins[i].Jobs[cut[id]:])
	}
	for i, id := range ids {
		closeDifferential(t, ctrl.base, id, ins[i], spec)
	}
}

func TestEndToEndControllerWALCorruption(t *testing.T) {
	bin := buildSchedd(t)
	cdir := t.TempDir()
	cargs := []string{"-controller", "-addr", "127.0.0.1:0", "-lease", "5s", "-data-dir", cdir}
	ctrl := startController(t, bin, cargs...)

	// Populate the journal: joins adopt tenants, each a place record.
	for n := 0; n < 4; n++ {
		var ts []string
		for i := 0; i < 8; i++ {
			ts = append(ts, fmt.Sprintf("cw-%d-%d", n, i))
		}
		join, _ := json.Marshal(map[string]any{
			"name": fmt.Sprintf("w%d", n), "addr": fmt.Sprintf("http://w%d", n), "tenants": ts,
		})
		if code, body := httpDo(t, "POST", ctrl.base+"/v1/cluster/join", join); code != http.StatusOK {
			t.Fatalf("join: %d %s", code, body)
		}
	}
	ctrl.stop(t)

	// One flipped bit in the middle of the controller WAL: the next
	// boot must refuse to serve rewritten history, non-zero.
	path := cdir + "/controller.wal"
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, cargs...)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() == 0 {
		t.Fatalf("corrupt controller WAL booted anyway: err %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("recovery refused")) {
		t.Fatalf("refusal does not say why:\n%s", out)
	}
}

func TestEndToEndStandbyFailover(t *testing.T) {
	bin := buildSchedd(t)
	portA, portB := freePort(t), freePort(t)
	baseA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	baseB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	primary := startController(t, bin, "-controller",
		"-addr", fmt.Sprintf("127.0.0.1:%d", portA), "-advertise", baseA,
		"-lease", "1s", "-data-dir", t.TempDir())
	standby := startWatchedDaemon(t, bin, "schedd: standby controller listening on ", nil,
		"-controller", "-standby", baseA,
		"-addr", fmt.Sprintf("127.0.0.1:%d", portB), "-advertise", baseB,
		"-lease", "1s", "-data-dir", t.TempDir())

	dirs := map[string]string{"w1": t.TempDir(), "w2": t.TempDir()}
	for _, name := range []string{"w1", "w2"} {
		startSchedd(t, bin,
			"-addr", "127.0.0.1:0", "-data-dir", dirs[name],
			"-join", primary.base, "-node-name", name,
			"-fsync-interval", "2ms", "-drain-timeout", "10s")
	}
	waitTopology(t, primary.base, "both workers alive", func(top clusterTopo) bool {
		alive := 0
		for _, n := range top.Nodes {
			if n.Alive {
				alive++
			}
		}
		return alive == 2
	})

	const tenants = 3
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.2}
	ids := make([]string, tenants)
	ins := make([]*job.Instance, tenants)
	cut := make(map[string]int, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("fo-%d", i)
		ins[i] = workload.Poisson(workload.Config{
			N: 90, M: 1, Alpha: 2.2, Seed: 977 + int64(i)*7919, ValueScale: 2,
		})
		create, _ := json.Marshal(map[string]any{"id": ids[i], "spec": spec})
		if code, body := httpDo(t, "POST", primary.base+"/v1/sessions", create); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", ids[i], code, body)
		}
		cut[ids[i]] = len(ins[i].Jobs) / 2
		feedThrough(t, primary.base, ids[i], ins[i].Jobs[:cut[ids[i]]])
	}

	// The standby mirrors the primary's state (its read endpoints serve
	// while it refuses mutations), and mutations answer 503 on it.
	waitCondE2E(t, "standby mirrored all placements", func() bool {
		code, body := httpDo(t, "GET", standby.base+"/v1/cluster/state", nil)
		if code != http.StatusOK {
			return false
		}
		var st struct {
			Placement map[string]string `json:"placement"`
		}
		return json.Unmarshal(body, &st) == nil && len(st.Placement) == tenants
	})
	if code, body := httpDo(t, "POST", standby.base+"/v1/cluster/rebalance", []byte("{}")); code != http.StatusServiceUnavailable {
		t.Fatalf("standby accepted a mutation: %d %s", code, body)
	}
	ref := placementView(t, primary.base)
	// Give the workers a couple of heartbeats to learn the standby list
	// the primary now advertises.
	time.Sleep(time.Second)

	// The primary dies without a word. The standby takes over when the
	// lease lapses; the workers' agents rotate to it on the same
	// silence and rejoin.
	primary.kill(t)
	waitCondE2E(t, "standby took over as primary", func() bool {
		code, body := httpDo(t, "GET", standby.base+"/v1/cluster/topology", nil)
		if code != http.StatusOK {
			return false
		}
		var top struct {
			Role string `json:"role"`
		}
		return json.Unmarshal(body, &top) == nil && top.Role == "primary"
	})
	if !standby.sawLine("schedd: controller takeover") {
		t.Fatal("takeover line never printed")
	}
	if got := placementView(t, standby.base); !bytes.Equal(got, ref) {
		t.Fatalf("post-takeover placement differs:\n got %s\nwant %s", got, ref)
	}
	waitTopology(t, standby.base, "workers followed the failover", func(top clusterTopo) bool {
		alive := 0
		for _, n := range top.Nodes {
			if n.Alive {
				alive++
			}
		}
		return alive == 2
	})

	// The cluster works under the new reign: the rest of every stream
	// lands through the new controller, and every Result matches the
	// uninterrupted reference.
	for i, id := range ids {
		feedThrough(t, standby.base, id, ins[i].Jobs[cut[id]:])
	}
	for i, id := range ids {
		closeDifferential(t, standby.base, id, ins[i], spec)
	}
}

// waitCondE2E polls cond with a generous deadline.
func waitCondE2E(t *testing.T, why string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("never reached: %s", why)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
