// The cluster kill-and-rebalance differential: a real controller and
// two real workers, traffic driven through the controller's redirects
// and proxy, one worker SIGKILLed mid-stream and restarted from its
// data dir, then drained — every tenant live-migrating to the
// survivor — and each tenant's final verified Result must be
// byte-identical to an uninterrupted single-engine replay of its
// whole workload. The mid-stream pins are byte-level too: a tenant's
// snapshot through the controller must be identical before the crash,
// after recovery, and after migration.
//
// The test name keeps the TestEndToEnd prefix so CI's race job
// (-run 'TestEndToEnd') exercises it under the race detector; CI also
// runs it by name in the dedicated cluster step.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/workload"
)

// startController launches the binary in -controller mode and waits
// for its listening line.
func startController(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := startDaemonLine(t, bin, "schedd: controller listening on ", args...)
	return p
}

// clusterNode mirrors one node row of GET /v1/cluster.
type clusterNode struct {
	Name    string `json:"name"`
	Alive   bool   `json:"alive"`
	Tenants int    `json:"tenants"`
}

// clusterTopo mirrors GET /v1/cluster.
type clusterTopo struct {
	Nodes []clusterNode `json:"nodes"`
}

// getTopology decodes the controller's topology.
func getTopology(t *testing.T, base string) clusterTopo {
	t.Helper()
	code, body := httpDo(t, "GET", base+"/v1/cluster", nil)
	if code != http.StatusOK {
		t.Fatalf("topology: %d %s", code, body)
	}
	var top clusterTopo
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatalf("topology decode: %v", err)
	}
	return top
}

// waitTopology polls the topology until cond holds.
func waitTopology(t *testing.T, base, why string, cond func(clusterTopo) bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		top := getTopology(t, base)
		if cond(top) {
			return
		}
		if time.Now().After(deadline) {
			js, _ := json.Marshal(top)
			t.Fatalf("cluster never reached %q; topology %s", why, js)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// migProgress mirrors GET /v1/cluster/migrations.
type migProgress struct {
	Counts struct {
		Running int    `json:"running"`
		Queued  int    `json:"queued"`
		Waiting int    `json:"waiting"`
		Parked  int    `json:"parked"`
		Done    uint64 `json:"done"`
	} `json:"counts"`
}

// waitMigrations polls a 202's watch handle until the supervisor has
// nothing in flight — the async analogue of the old synchronous 200.
func waitMigrations(t *testing.T, watchURL, why string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := httpDo(t, "GET", watchURL, nil)
		if code != http.StatusOK {
			t.Fatalf("migrations: %d %s", code, body)
		}
		var mp migProgress
		if err := json.Unmarshal(body, &mp); err != nil {
			t.Fatal(err)
		}
		if mp.Counts.Running+mp.Counts.Queued+mp.Counts.Waiting == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("migrations never reached %q: %s", why, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// getPlacements decodes tenant -> node off the controller.
func getPlacements(t *testing.T, base string) map[string]string {
	t.Helper()
	code, body := httpDo(t, "GET", base+"/v1/cluster/tenants", nil)
	if code != http.StatusOK {
		t.Fatalf("tenants: %d %s", code, body)
	}
	var resp struct {
		Tenants map[string]string `json:"tenants"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Tenants
}

// feedThrough posts an NDJSON batch at the controller; the client
// follows the 307 (the bytes.Reader body is replayable) and the ack —
// durable, from the owning worker — must accept every line.
func feedThrough(t *testing.T, base, id string, js []job.Job) {
	t.Helper()
	code, body := httpDo(t, "POST", base+"/v1/sessions/"+id+"/arrivals", job.AppendNDJSON(nil, js))
	if code != http.StatusOK || !bytes.Contains(body, []byte(fmt.Sprintf(`"accepted":%d`, len(js)))) {
		t.Fatalf("feed %s: %d %s", id, code, body)
	}
}

// settledSnapshot polls the tenant's snapshot through the controller
// until the applier has drained to exactly `arrivals` applied, then
// returns the snapshot bytes — the canonical mid-stream state.
func settledSnapshot(t *testing.T, base, id string, arrivals int) []byte {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := httpDo(t, "GET", base+"/v1/sessions/"+id+"/snapshot", nil)
		if code == http.StatusOK {
			var snap struct {
				Arrivals int `json:"arrivals"`
				Backlog  int `json:"backlog"`
			}
			if err := json.Unmarshal(body, &snap); err != nil {
				t.Fatal(err)
			}
			if snap.Arrivals == arrivals && snap.Backlog == 0 {
				return body
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s never settled at %d arrivals (last: %d %s)", id, arrivals, code, "")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestEndToEndCluster(t *testing.T) {
	bin := buildSchedd(t)
	ctrl := startController(t, bin, "-controller", "-addr", "127.0.0.1:0", "-lease", "1s",
		"-data-dir", t.TempDir())

	dirs := map[string]string{"w1": t.TempDir(), "w2": t.TempDir()}
	wargs := func(name string) []string {
		return []string{
			"-addr", "127.0.0.1:0", "-data-dir", dirs[name],
			"-join", ctrl.base, "-node-name", name,
			"-fsync-interval", "2ms", "-checkpoint-every", "64",
			"-drain-timeout", "10s",
		}
	}
	workers := map[string]*proc{
		"w1": startSchedd(t, bin, wargs("w1")...),
		"w2": startSchedd(t, bin, wargs("w2")...),
	}
	waitTopology(t, ctrl.base, "both workers alive", func(top clusterTopo) bool {
		alive := 0
		for _, n := range top.Nodes {
			if n.Alive {
				alive++
			}
		}
		return alive == 2
	})

	// Four tenants, distinct Poisson workloads, created through the
	// controller's proxy (it picks each home off the ring).
	const tenants = 4
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.2}
	ids := make([]string, tenants)
	ins := make([]*job.Instance, tenants)
	cut := make(map[string]int, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("mt-%d", i)
		ins[i] = workload.Poisson(workload.Config{
			N: 120, M: 1, Alpha: 2.2, Seed: 101 + int64(i)*7919, ValueScale: 2,
		})
		create, _ := json.Marshal(map[string]any{"id": ids[i], "spec": spec})
		if code, body := httpDo(t, "POST", ctrl.base+"/v1/sessions", create); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", ids[i], code, body)
		}
		cut[ids[i]] = len(ins[i].Jobs) / 2
	}

	// First half of every stream, through the controller's redirects.
	totalFed := 0
	for i, id := range ids {
		feedThrough(t, ctrl.base, id, ins[i].Jobs[:cut[id]])
		totalFed += cut[id]
	}

	// Pick the victim: whichever worker hosts mt-0 (every tenant on it
	// rides through the crash). The other worker survives throughout.
	placements := getPlacements(t, ctrl.base)
	victim := placements["mt-0"]
	survivor := "w2"
	if victim == "w2" {
		survivor = "w1"
	}
	var victimIDs []string
	victimFed := 0
	for _, id := range ids {
		if placements[id] == victim {
			victimIDs = append(victimIDs, id)
			victimFed += cut[id]
		}
	}
	t.Logf("victim %s hosts %v; survivor %s", victim, victimIDs, survivor)

	// Settle and capture every tenant's mid-stream snapshot — the
	// byte-level reference for both recovery and migration below.
	pre := make(map[string][]byte, tenants)
	for _, id := range ids {
		pre[id] = settledSnapshot(t, ctrl.base, id, cut[id])
	}

	// The fleet scrape has seen every acked arrival.
	if v := metricValue(t, ctrl.base, "schedd_fleet_arrivals_total"); int(v) != totalFed {
		t.Fatalf("fleet arrivals = %v, want %d", v, totalFed)
	}

	// Crash: SIGKILL the victim, no drain, no goodbyes. The controller's
	// failure detector must mark it dead when its lease runs out.
	workers[victim].kill(t)
	waitTopology(t, ctrl.base, "victim marked dead", func(top clusterTopo) bool {
		for _, n := range top.Nodes {
			if n.Name == victim {
				return !n.Alive
			}
		}
		return false
	})

	// A dead node's tenants refuse loudly through the controller (their
	// only durable copy is on its disk); the survivor's keep serving.
	if code, _ := httpDo(t, "GET", ctrl.base+"/v1/sessions/"+victimIDs[0]+"/snapshot", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("dead tenant's snapshot: %d, want 503", code)
	}
	for _, id := range ids {
		if placements[id] == survivor {
			if code, _ := httpDo(t, "GET", ctrl.base+"/v1/sessions/"+id+"/snapshot", nil); code != http.StatusOK {
				t.Fatalf("survivor tenant %s stopped serving: %d", id, code)
			}
		}
	}

	// Restart the victim on its own data dir: recovery replays its
	// tenants byte-identically, the agent rejoins (same name), and the
	// controller routes to them again.
	workers[victim] = startSchedd(t, bin, wargs(victim)...)
	wantBoot := fmt.Sprintf("schedd: recovered %d sessions, %d arrivals replayed (0 torn bytes truncated, 0 retired logs swept)",
		len(victimIDs), victimFed)
	if workers[victim].recovered != wantBoot {
		t.Fatalf("victim boot line:\n got %q\nwant %q", workers[victim].recovered, wantBoot)
	}
	waitTopology(t, ctrl.base, "victim rejoined", func(top clusterTopo) bool {
		for _, n := range top.Nodes {
			if n.Name == victim {
				return n.Alive
			}
		}
		return false
	})
	for _, id := range victimIDs {
		if got := settledSnapshot(t, ctrl.base, id, cut[id]); !bytes.Equal(got, pre[id]) {
			t.Fatalf("recovered snapshot of %s differs:\n got %s\nwant %s", id, got, pre[id])
		}
	}

	// Rebalance by draining the victim: the drain is accepted (202) with
	// the planned tenant list, then the supervisor live-migrates each
	// one (WAL shipped over HTTP, imported, adopted) to the survivor,
	// mid-stream, while we watch the progress handle it pointed at.
	drain, _ := json.Marshal(map[string]string{"node": victim})
	code, body := httpDo(t, "POST", ctrl.base+"/v1/cluster/drain", drain)
	if code != http.StatusAccepted {
		t.Fatalf("drain: %d %s", code, body)
	}
	var drained struct {
		Planned []string `json:"planned"`
		Watch   string   `json:"watch"`
	}
	if err := json.Unmarshal(body, &drained); err != nil {
		t.Fatal(err)
	}
	if len(drained.Planned) != len(victimIDs) {
		t.Fatalf("drain planned %v, want all of %v", drained.Planned, victimIDs)
	}
	if drained.Watch == "" {
		t.Fatalf("drain response carries no watch handle: %s", body)
	}
	waitMigrations(t, ctrl.base+drained.Watch, "drain converged")
	for id, node := range getPlacements(t, ctrl.base) {
		if node == victim {
			t.Fatalf("tenant %s still placed on the drained node", id)
		}
	}
	// Migration preserved the exact mid-stream state: the snapshot at
	// the new home is byte-identical to the pre-crash one.
	for _, id := range victimIDs {
		if got := settledSnapshot(t, ctrl.base, id, cut[id]); !bytes.Equal(got, pre[id]) {
			t.Fatalf("migrated snapshot of %s differs:\n got %s\nwant %s", id, got, pre[id])
		}
	}

	// Second half of every stream — same client-visible URLs, new homes.
	for i, id := range ids {
		feedThrough(t, ctrl.base, id, ins[i].Jobs[cut[id]:])
	}

	// Close every tenant through the controller and pin the
	// differential: each relayed verified Result byte-identical
	// (modulo wall-clock fields) to an uninterrupted replay of the
	// tenant's whole workload on a single engine.
	for i, id := range ids {
		code, body := httpDo(t, "DELETE", ctrl.base+"/v1/sessions/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("close %s: %d %s", id, code, body)
		}
		var closed struct {
			Result *engine.Result `json:"result"`
		}
		if err := json.Unmarshal(body, &closed); err != nil || closed.Result == nil {
			t.Fatalf("close %s response %s: %v", id, body, err)
		}
		wantRes, err := engine.ReplayAllSpec([]*job.Instance{ins[i]}, spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		mask := func(r *engine.Result) []byte {
			cp := *r
			cp.MaxArrive, cp.TotalArrive, cp.PlanTime = 0, 0, 0
			js, _ := json.Marshal(&cp)
			return js
		}
		want := mask(wantRes[0])
		var wantRT engine.Result
		if err := json.Unmarshal(want, &wantRT); err != nil {
			t.Fatal(err)
		}
		want, _ = json.Marshal(&wantRT)
		if got := mask(closed.Result); !bytes.Equal(got, want) {
			t.Fatalf("tenant %s result differs from uninterrupted replay:\n got %s\nwant %s", id, got, want)
		}
	}
	if placed := getPlacements(t, ctrl.base); len(placed) != 0 {
		t.Fatalf("closed tenants still placed: %v", placed)
	}

	// Orderly exits all around.
	workers[victim].stop(t)
	workers[survivor].stop(t)
	ctrl.stop(t)
}

// startDaemonLine is startSchedd generalized over the readiness line
// prefix, so the controller (whose line differs) can share the
// process plumbing.
func startDaemonLine(t *testing.T, bin, prefix string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "schedd: recovered ") {
			p.recovered = line
		}
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			// The controller's line carries a "(lease …)" suffix.
			if i := strings.Index(rest, " ("); i >= 0 {
				rest = rest[:i]
			}
			p.base = "http://" + rest
			break
		}
	}
	if p.base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon never reported %q (scan err %v)", prefix, sc.Err())
	}
	go io.Copy(io.Discard, stdout)
	return p
}
