// The kill-and-restore differential: a real schedd binary, SIGKILLed
// mid-ingest at randomized points, must come back from its -data-dir
// indistinguishable from a daemon that never died — every
// acknowledged arrival present, mid-stream snapshots byte-identical
// to an uninterrupted in-process host fed the same prefix, and the
// final verified Result byte-identical to batch replay. This is the
// system-level pin on the WAL's durability contract; the package
// tests in internal/wal and internal/serve cover the layers below.
//
// The test name keeps the TestEndToEnd prefix so CI's race job
// (-run 'TestEndToEnd') exercises it under the race detector.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/serve"
	"repro/internal/workload"
)

// buildSchedd compiles the real binary (with -race when this test
// itself runs under the race detector, so the child is checked too).
func buildSchedd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "schedd")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, ".")
	cmd := exec.Command("go", args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building schedd: %v\n%s", err, out)
	}
	return bin
}

// proc is one live schedd process started from the built binary.
type proc struct {
	cmd       *exec.Cmd
	base      string // http://host:port
	recovered string // the "schedd: recovered ..." boot line, if any
	mu        sync.Mutex
	lines     []string // post-readiness stdout (startWatchedDaemon only)
}

// sawLine reports whether a captured post-readiness line starts with
// the prefix (processes started with startWatchedDaemon only).
func (p *proc) sawLine(prefix string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.lines {
		if strings.HasPrefix(l, prefix) {
			return true
		}
	}
	return false
}

// waitExit waits for the process to end on its own and returns its
// exit code — the failpoint crashes assert on it.
func (p *proc) waitExit(t *testing.T) int {
	t.Helper()
	err := p.cmd.Wait()
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	if err != nil {
		t.Fatal(err)
	}
	return 0
}

// startSchedd launches the binary and waits for the listening line —
// which the daemon prints only after recovery finished, so returning
// here means the data dir has been fully replayed.
func startSchedd(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	// A failed assertion must not orphan the child: it would keep the
	// test's stderr open and stall go test long after the failure.
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "schedd: recovered ") {
			p.recovered = line
		}
		if rest, ok := strings.CutPrefix(line, "schedd: listening on "); ok {
			p.base = "http://" + rest
			break
		}
	}
	if p.base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("schedd never reported a listen address (scan err %v)", sc.Err())
	}
	// Keep draining stdout so the drain summary cannot block the child.
	go io.Copy(io.Discard, stdout)
	return p
}

// kill is the crash: SIGKILL, no grace, no drain, no close records.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// stop is the orderly exit: SIGTERM and a clean drain.
func (p *proc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("schedd did not drain cleanly: %v", err)
	}
}

func httpDo(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, out
}

// postArrival streams one job and requires the durable ack — after it
// returns, the arrival must survive any crash.
func postArrival(t *testing.T, base, id string, j job.Job) {
	t.Helper()
	line := append(job.AppendJSON(nil, j), '\n')
	code, body := httpDo(t, "POST", base+"/v1/sessions/"+id+"/arrivals", line)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"accepted":1`)) {
		t.Fatalf("arrival ack: %d %s", code, body)
	}
}

func getSnapshot(t *testing.T, base, id string) []byte {
	t.Helper()
	code, body := httpDo(t, "GET", base+"/v1/sessions/"+id+"/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", code, body)
	}
	return body
}

// metricValue scrapes one un-labelled counter/gauge from /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	code, body := httpDo(t, "GET", base+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			fmt.Sscanf(rest, "%g", &v)
			return v
		}
	}
	t.Fatalf("metric %s missing from scrape", name)
	return 0
}

// TestEndToEndCrashRecovery kills a durable daemon at randomized
// points mid-ingest across several restart cycles (the last one after
// a checkpoint/truncate compaction) and pins byte-identical recovery
// against an uninterrupted run.
func TestEndToEndCrashRecovery(t *testing.T) {
	bin := buildSchedd(t)
	dir := t.TempDir()
	const id = "victim"
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.2}
	in := workload.Poisson(workload.Config{N: 260, M: 1, Alpha: 2.2, Seed: 21, ValueScale: 2})

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("kill-point seed %d", seed)

	// A small checkpoint interval so the final cycle provably recovers
	// from checkpoint + tail, and a short fsync tick to keep the
	// per-arrival durable acks cheap.
	args := []string{
		"-addr", "127.0.0.1:0", "-data-dir", dir,
		"-fsync-interval", "2ms", "-checkpoint-every", "64",
		"-drain-timeout", "10s",
	}

	// The uninterrupted reference: an in-process host fed the same
	// prefix, queried over the same HTTP surface — snapshots must match
	// the crashed-and-recovered daemon's byte for byte.
	refHost := serve.NewHost(serve.Config{})
	refSrv := httptest.NewServer(serve.NewHandler(refHost))
	defer refSrv.Close()
	refSess, err := refHost.Create(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	refFed := 0
	refSnapshot := func(upTo int) []byte {
		t.Helper()
		for ; refFed < upTo; refFed++ {
			if err := refSess.Submit(context.Background(), in.Jobs[refFed]); err != nil {
				t.Fatal(err)
			}
		}
		// The reference applier is async: wait until it has drained.
		deadline := time.Now().Add(5 * time.Second)
		for {
			body := getSnapshot(t, refSrv.URL, id)
			var snap struct {
				Arrivals int `json:"arrivals"`
				Backlog  int `json:"backlog"`
			}
			if err := json.Unmarshal(body, &snap); err != nil {
				t.Fatal(err)
			}
			if snap.Arrivals == upTo && snap.Backlog == 0 {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("reference host never drained to %d arrivals: %s", upTo, body)
			}
			time.Sleep(time.Millisecond)
		}
	}

	p := startSchedd(t, bin, args...)
	create, _ := json.Marshal(map[string]any{"id": id, "spec": spec})
	if code, body := httpDo(t, "POST", p.base+"/v1/sessions", create); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}

	acked := 0
	const cycles = 3
	for cycle := 0; cycle < cycles; cycle++ {
		// Randomized kill point: some more durably-acked arrivals, then
		// SIGKILL. Arrivals are posted one per request and each ack is
		// awaited, so at the kill instant exactly `acked` arrivals have
		// been acknowledged — all of which must survive.
		target := acked + 20 + rng.Intn(60)
		if cycle == cycles-1 {
			// The final incarnation must ingest more than a full
			// checkpoint interval so the compaction the poll below waits
			// for is guaranteed to fire in this process.
			if min := acked + 70; target < min {
				target = min
			}
		}
		if target > len(in.Jobs) {
			target = len(in.Jobs)
		}
		for ; acked < target; acked++ {
			postArrival(t, p.base, id, in.Jobs[acked])
		}
		if cycle == cycles-1 {
			// The last crash must land after a checkpoint/truncate
			// compaction; the applier checkpoints asynchronously, so poll.
			deadline := time.Now().Add(10 * time.Second)
			for metricValue(t, p.base, "schedd_wal_checkpoints_total") < 1 {
				if time.Now().After(deadline) {
					t.Fatal("no checkpoint before the final kill; compaction recovery would go uncovered")
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		p.kill(t)

		p = startSchedd(t, bin, args...)
		wantBoot := fmt.Sprintf("schedd: recovered 1 sessions, %d arrivals replayed (0 torn bytes truncated, 0 retired logs swept)", acked)
		if p.recovered != wantBoot {
			t.Fatalf("cycle %d boot line:\n got %q\nwant %q", cycle, p.recovered, wantBoot)
		}
		// Mid-stream differential: the recovered snapshot must be
		// byte-identical to the uninterrupted reference at the same
		// prefix, through the same HTTP surface.
		got := getSnapshot(t, p.base, id)
		want := refSnapshot(acked)
		if !bytes.Equal(got, want) {
			t.Fatalf("cycle %d recovered snapshot differs:\n got %s\nwant %s", cycle, got, want)
		}
	}

	// Finish the stream on the final incarnation and close: the Result
	// must be byte-identical (modulo wall-clock timings) to an
	// uninterrupted batch replay of the whole instance.
	for ; acked < len(in.Jobs); acked++ {
		postArrival(t, p.base, id, in.Jobs[acked])
	}
	code, body := httpDo(t, "DELETE", p.base+"/v1/sessions/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("close: %d %s", code, body)
	}
	var closed struct {
		Result *engine.Result `json:"result"`
	}
	if err := json.Unmarshal(body, &closed); err != nil || closed.Result == nil {
		t.Fatalf("close response %s: %v", body, err)
	}
	wantRes, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	mask := func(r *engine.Result) []byte {
		cp := *r
		cp.MaxArrive, cp.TotalArrive, cp.PlanTime = 0, 0, 0
		js, _ := json.Marshal(&cp)
		return js
	}
	if got, want := mask(closed.Result), mask(wantRes[0]); !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs from uninterrupted replay:\n got %s\nwant %s", got, want)
	}

	// Orderly exit retired the log; the next boot finds a clean slate.
	p.stop(t)
	p = startSchedd(t, bin, args...)
	if want := "schedd: recovered 0 sessions, 0 arrivals replayed (0 torn bytes truncated, 0 retired logs swept)"; p.recovered != want {
		t.Fatalf("post-close boot line: %q", p.recovered)
	}
	p.stop(t)
}

// TestEndToEndRecoveryRefusesCorruption pins the other half of the
// recovery contract at the binary level: damage beyond a torn tail —
// a bit flipped in a non-final segment, where truncation can never
// paper over it — must make the daemon exit non-zero instead of
// serving rewritten history.
func TestEndToEndRecoveryRefusesCorruption(t *testing.T) {
	bin := buildSchedd(t)
	dir := t.TempDir()
	// Tiny segments force rotation, so the damage below lands mid-log.
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dir,
		"-fsync-interval", "1ms", "-wal-segment-bytes", "256"}

	p := startSchedd(t, bin, args...)
	create, _ := json.Marshal(map[string]any{"id": "c", "spec": engine.Spec{Name: "oa", M: 1, Alpha: 2}})
	if code, body := httpDo(t, "POST", p.base+"/v1/sessions", create); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	for i := 0; i < 20; i++ {
		postArrival(t, p.base, "c", job.Job{ID: i + 1, Release: float64(i), Deadline: float64(i) + 30, Work: 1, Value: 2})
	}
	p.kill(t)

	// Flip one bit inside segment 1, which rotation left behind long
	// ago — mid-log corruption, not a torn tail.
	tenants, err := os.ReadDir(filepath.Join(dir, "tenants"))
	if err != nil || len(tenants) != 1 {
		t.Fatalf("tenant dirs: %v %v", tenants, err)
	}
	tdir := filepath.Join(dir, "tenants", tenants[0].Name())
	if segs, err := os.ReadDir(tdir); err != nil || len(segs) < 2 {
		t.Fatalf("rotation never happened (%v, %v); the flip would hit the final segment", segs, err)
	}
	seg := filepath.Join(tdir, "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		cmd.Process.Kill()
		t.Fatalf("daemon served a corrupted log:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("exit: %v", err)
	}
	if !bytes.Contains(out, []byte("recovery refused")) {
		t.Fatalf("refusal not reported:\n%s", out)
	}
}
