package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/load"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

// startDaemon boots a real daemon on a random localhost port, with
// the profiling endpoints mounted as an operator would for a perf
// investigation.
func startDaemon(t *testing.T, cfg serve.Config) *daemon {
	t.Helper()
	d := newDaemon(cfg, 30*time.Second, true)
	if err := d.listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- d.serveHTTP() }()
	t.Cleanup(func() {
		d.srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return d
}

// reverify re-checks every tenant's returned schedule client-side
// against the instance it streamed — the daemon already verified at
// close, this pins that the wire carried the real schedule.
func reverify(t *testing.T, rep *load.Report) {
	t.Helper()
	for _, tr := range rep.Results {
		if tr.Result == nil || tr.Result.Schedule == nil {
			t.Fatalf("tenant %s: no verified result (%+v)", tr.ID, tr.Result)
		}
		if err := sched.Verify(tr.Instance, tr.Result.Schedule); err != nil {
			t.Fatalf("tenant %s: returned schedule fails verification: %v", tr.ID, err)
		}
	}
}

// TestEndToEnd is the CI smoke test: schedd on a random port, loadgen
// with small K and n in scaled real time, a clean drain with results
// flushed, and non-empty metrics. It runs in -short mode.
func TestEndToEnd(t *testing.T) {
	d := startDaemon(t, serve.Config{MaxSessions: 64})
	base := "http://" + d.addr()

	rep, err := load.Run(context.Background(), load.Config{
		BaseURL: base,
		Spec:    engine.Spec{Name: "oa", M: 1, Alpha: 2.2},
		Gen:     workload.Bursty,
		Workload: workload.Config{
			N: 10, Seed: 7, ValueScale: 2, Horizon: 0.05,
		},
		Tenants: 8,
		Scale:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if rep.Tenants != 8 || rep.Arrivals != 80 {
		t.Fatalf("report: %d tenants, %d arrivals", rep.Tenants, rep.Arrivals)
	}
	if rep.Latency.Count() != 80 || rep.Throughput <= 0 {
		t.Fatalf("report stats: latency n=%d throughput=%v", rep.Latency.Count(), rep.Throughput)
	}
	reverify(t, rep)

	// Metrics are live and non-empty.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"schedd_arrivals_total 80", "schedd_sessions_closed_total 8", "schedd_arrival_latency_seconds_count 80"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics miss %q:\n%s", want, metrics)
		}
	}

	// The profiling endpoints answer when mounted (startDaemon opts in)
	// and the API still routes around them.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: %s", resp.Status)
	}

	// Leave one session open: the drain must close it, verify its
	// schedule and flush its result into the shutdown summary.
	straggler, err := d.host.Create("straggler", engine.Spec{Name: "pd", M: 1, Alpha: 2.2})
	if err != nil {
		t.Fatal(err)
	}
	in := workload.Uniform(workload.Config{N: 6, M: 1, Alpha: 2.2, Seed: 3, ValueScale: 2})
	if err := workload.NewStream(in, 0).Play(context.Background(), func(j job.Job) error {
		return straggler.Submit(context.Background(), j)
	}); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := d.shutdown(&out); err != nil {
		t.Fatalf("shutdown: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "straggler") || !strings.Contains(text, "drained 1 sessions") {
		t.Fatalf("drain summary:\n%s", text)
	}
	if ids := d.host.SessionIDs(); len(ids) != 0 {
		t.Fatalf("sessions survived drain: %v", ids)
	}
}

// TestPprofOffByDefault: without -pprof the debug endpoints must not
// exist — they expose process internals.
func TestPprofOffByDefault(t *testing.T) {
	d := newDaemon(serve.Config{MaxSessions: 4}, time.Second, false)
	if err := d.listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- d.serveHTTP() }()
	t.Cleanup(func() {
		d.srv.Close()
		<-errc
	})
	resp, err := http.Get("http://" + d.addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without -pprof")
	}
}

// TestEndToEndSoak100 is the acceptance soak: 100 concurrent tenants
// through one daemon, every session's final result schedule-verified
// both server- and client-side.
func TestEndToEndSoak100(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run skipped in -short mode")
	}
	d := startDaemon(t, serve.Config{MaxSessions: 256, Shards: 32})
	rep, err := load.Run(context.Background(), load.Config{
		BaseURL: "http://" + d.addr(),
		Spec:    engine.Spec{Name: "pd", M: 1, Alpha: 2.2},
		Gen:     workload.Poisson,
		Workload: workload.Config{
			N: 20, Seed: 42, ValueScale: 2,
		},
		Tenants: 100,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if rep.Tenants != 100 || rep.Arrivals != 100*20 {
		t.Fatalf("report: %d tenants, %d arrivals", rep.Tenants, rep.Arrivals)
	}
	reverify(t, rep)
	if live := d.host.Metrics().SessionsLive(); live != 0 {
		t.Fatalf("%d sessions still live after the run", live)
	}
	var out bytes.Buffer
	if err := d.shutdown(&out); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("%d arrivals served", rep.Arrivals)) {
		t.Fatalf("shutdown summary:\n%s", out.String())
	}
}
