//go:build !race

package main

// raceEnabled mirrors the race detector into the crash e2e so the
// child schedd binary it builds is instrumented too.
const raceEnabled = false
