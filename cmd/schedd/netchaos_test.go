// The network-chaos differential: loadgen-style stamped traffic
// driven through the fault-injection proxy (duplicated connections,
// lost responses, mid-stream stalls, truncated requests, early
// resets) against a durable daemon that is SIGKILLed mid-run must
// still deliver every tenant's final Result byte-identical to the
// uninterrupted ReplayAllSpec reference — the exactly-once contract
// of ISSUE 10 at the binary level. Zero duplicate applications is
// pinned by the differential itself: a single re-applied batch would
// shift energy, cost or rejections away from the replay.
//
// The test name keeps the TestEndToEnd prefix so CI's race job
// (-run 'TestEndToEnd') exercises it under the race detector.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/load"
	"repro/internal/workload"
)

func TestEndToEndNetworkChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos e2e needs seconds of paced wall clock")
	}
	bin := buildSchedd(t)
	dir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-data-dir", dir,
		"-fsync-interval", "2ms", "-checkpoint-every", "128",
		"-shed-after", "2s", "-drain-timeout", "10s",
	}
	p := startSchedd(t, bin, args...)

	// Every byte of client traffic crosses the fault proxy. The seed
	// fixes the fault schedule per connection order; rates are chosen
	// so duplicated deliveries and lost acks both certainly occur
	// across a few hundred requests.
	prx, err := chaos.New("127.0.0.1:0", strings.TrimPrefix(p.base, "http://"), chaos.Config{
		Seed:         11,
		DropResponse: 0.12,
		Duplicate:    0.15,
		Delay:        0.05,
		Truncate:     0.03,
		DropEarly:    0.03,
		DelayFor:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prx.Close()

	const tenants, n = 3, 160
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.2}
	type outcome struct {
		rep *load.Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := load.Run(context.Background(), load.Config{
			BaseURL:  "http://" + prx.Addr(),
			Spec:     spec,
			Gen:      workload.Poisson,
			Workload: workload.Config{N: n, Seed: 29, ValueScale: 2},
			Tenants:  tenants,
			Batch:    8,
			// ~3s of paced traffic (10-unit horizon): long enough that
			// the kill below reliably lands mid-stream.
			Scale:  300 * time.Millisecond,
			Prefix: "xo",
			Retry: client.Config{
				// Generous budget: the retries must ride out the whole
				// kill-to-recovered window, not just single faults.
				MaxRetries:     16,
				BaseBackoff:    15 * time.Millisecond,
				MaxBackoff:     500 * time.Millisecond,
				AttemptTimeout: 10 * time.Second,
			},
		})
		done <- outcome{rep, err}
	}()

	// SIGKILL once roughly a third of the stream is applied (scraped
	// off the worker directly, not through the proxy), then restart
	// from the same data dir and repoint the proxy at the new port.
	// Clients are mid-batch when the process dies; their retries cross
	// the recovery boundary and must be dedup-suppressed, not
	// re-applied.
	deadline := time.Now().Add(30 * time.Second)
	for metricValue(t, p.base, "schedd_arrivals_total") < tenants*n/3 {
		select {
		case oc := <-done:
			t.Fatalf("load finished before the kill (err %v); no crash coverage", oc.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("load never reached the kill point")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.kill(t)
	p = startSchedd(t, bin, args...)
	if !strings.Contains(p.recovered, "schedd: recovered 3 sessions") {
		t.Fatalf("recovery boot line: %q", p.recovered)
	}
	prx.SetTarget(strings.TrimPrefix(p.base, "http://"))

	var oc outcome
	select {
	case oc = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("load never finished after the restart")
	}
	if oc.err != nil {
		t.Fatalf("load under chaos: %v", oc.err)
	}
	rep := oc.rep
	if rep.Arrivals != tenants*n {
		t.Fatalf("acked arrivals = %d, want %d", rep.Arrivals, tenants*n)
	}
	// The run must actually have been disturbed, or the differential
	// below proves nothing: the kill alone guarantees wire errors.
	if rep.Retries+rep.NetErrors == 0 {
		t.Fatal("no retries and no net errors: chaos never bit")
	}
	t.Logf("chaos run: %d retries, %d net errors, %d deduped acks, %d shed, %d retry-after waits",
		rep.Retries, rep.NetErrors, rep.DupsSuppressed, rep.Shed429, rep.RetryAfterWaits)

	// The exactly-once differential: every tenant's verified Result,
	// collected through faults and a crash, must be byte-identical
	// (modulo wall-clock timings) to the uninterrupted batch replay of
	// its instance. Any duplicate application — a retried batch applied
	// twice, a duplicated connection's replay accepted — would move
	// energy, cost or the rejection count and fail the comparison.
	mask := func(r *engine.Result) []byte {
		cp := *r
		cp.MaxArrive, cp.TotalArrive, cp.PlanTime = 0, 0, 0
		js, _ := json.Marshal(&cp)
		return js
	}
	for _, tr := range rep.Results {
		if tr.Result == nil {
			t.Fatalf("tenant %s: no result", tr.ID)
		}
		want, err := engine.ReplayAllSpec([]*job.Instance{tr.Instance}, spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got, ref := mask(tr.Result), mask(want[0]); !bytes.Equal(got, ref) {
			t.Fatalf("tenant %s result differs from uninterrupted replay:\n got %s\nwant %s", tr.ID, got, ref)
		}
	}
	p.stop(t)
}
