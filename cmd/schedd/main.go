// Command schedd is the multi-tenant online scheduling daemon: it
// hosts live policy sessions behind an HTTP API and serves streaming
// job arrivals until told to stop, at which point it drains — every
// session is closed, its schedule verified, and the final results
// flushed to stdout.
//
// Usage:
//
//	schedd [-addr :8080] [-shards 16] [-max-sessions 1024]
//	       [-max-backlog 256] [-apply-batch 0] [-shed-after 2s]
//	       [-drain-timeout 30s] [-data-dir ""] [-fsync-interval 5ms]
//	       [-checkpoint-every 4096] [-wal-segment-bytes 4194304] [-pprof]
//
// Cluster modes (see internal/cluster):
//
//	schedd -controller -data-dir DIR [-addr :8080] [-lease 5s] [-vnodes 64]
//	       [-advertise URL] [-standby http://primary:8080]
//	       [-max-migrations 2] [-migration-deadline 60s]
//	schedd -join http://controller:8080 -data-dir DIR
//	       [-node-name NAME] [-advertise URL] [other worker flags]
//
// A controller owns tenant placement: workers join it and heartbeat,
// tenant creates/closes proxy through it, arrivals and snapshots are
// 307-redirected to the owning worker, and GET /metrics merges every
// worker's stats (exact histogram merge) into one fleet scrape. A
// worker is a normal durable daemon plus the migration endpoints and
// the join/heartbeat loop; -join requires -data-dir because live
// migration ships the tenant's write-ahead log.
//
// The controller itself is durable: -data-dir (required) holds its
// placement WAL, recovered on boot under the same torn-vs-corrupt
// contract as tenant logs. Migrations run under a supervisor —
// bounded concurrency, retries with backoff, permanent failures
// parked and visible in the topology. With -standby URL the process
// starts as a hot standby tailing that primary's state stream and
// takes over (with a fenced epoch) when the primary's lease lapses.
//
// With -data-dir the daemon is durable: every accepted arrival batch
// is appended to a per-tenant write-ahead log and acknowledged only
// after a group fsync covers it, and on startup the same directory is
// recovered — surviving sessions are rebuilt byte-identically by
// replaying their logs before the listener opens. A torn tail (a
// record cut mid-write by the crash) is truncated and reported; any
// other corruption refuses recovery and the process exits non-zero
// rather than serve rewritten history.
//
// API (see internal/serve):
//
//	POST   /v1/sessions                  {"id": "...", "spec": {"name": "pd", "m": 1, "alpha": 2}}
//	POST   /v1/sessions/{id}/arrivals    NDJSON stream of jobs (one per line)
//	GET    /v1/sessions/{id}/snapshot    live plan observation
//	DELETE /v1/sessions/{id}             close → final verified result
//	GET    /v1/sessions                  live tenant ids
//	GET    /v1/registry                  policy registry
//	GET    /metrics                      Prometheus text format
//	GET    /debug/pprof/*                profiling (only with -pprof)
//
// SIGINT/SIGTERM trigger the graceful drain; a second signal aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// daemon ties the session host to its HTTP server; the pieces are
// separated from main so the end-to-end test can drive a real daemon
// on a random port inside the test process.
type daemon struct {
	host         *serve.Host
	srv          *http.Server
	ln           net.Listener
	store        *wal.Store // nil without -data-dir
	drainTimeout time.Duration
}

// withPprofMux wraps a handler with the opt-in profiling endpoints:
// they expose process internals and belong behind the operator's
// explicit choice (-pprof).
func withPprofMux(handler http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func newDaemon(cfg serve.Config, drainTimeout time.Duration, withPprof bool) *daemon {
	host := serve.NewHost(cfg)
	handler := serve.NewHandler(host)
	if withPprof {
		handler = withPprofMux(handler)
	}
	return &daemon{
		host:         host,
		srv:          &http.Server{Handler: handler},
		drainTimeout: drainTimeout,
	}
}

// listen binds the address; ":0" picks a random free port.
func (d *daemon) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	d.ln = ln
	return nil
}

// addr returns the bound address (after listen).
func (d *daemon) addr() string { return d.ln.Addr().String() }

// serveHTTP blocks serving the API until shutdown.
func (d *daemon) serveHTTP() error {
	err := d.srv.Serve(d.ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// shutdown stops accepting connections, drains every live session and
// writes the drain summary. The drain is bounded by drainTimeout so a
// stuck session cannot hold the process hostage.
func (d *daemon) shutdown(w io.Writer) error {
	// In-flight requests get a short grace, then their connections are
	// severed: an NDJSON arrival stream can be endless, and the session
	// drain below — not idle-wait on clients — is what the timeout
	// budget must go to.
	grace := d.drainTimeout / 4
	if grace > 2*time.Second {
		grace = 2 * time.Second
	}
	gctx, gcancel := context.WithTimeout(context.Background(), grace)
	err := d.srv.Shutdown(gctx)
	gcancel()
	if err != nil {
		d.srv.Close()
		if err != context.DeadlineExceeded {
			fmt.Fprintf(w, "schedd: http shutdown: %v\n", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.drainTimeout)
	defer cancel()
	results, err := d.host.Drain(ctx)
	// The drain closed every session (retiring its log); the store
	// itself shuts after, so a session the timeout abandoned keeps its
	// log on disk for the next boot's recovery.
	if d.store != nil {
		if cerr := d.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	tbl := &stats.Table{
		Title:   "drained sessions",
		Headers: []string{"session", "policy", "energy", "lost", "cost", "rejected", "status"},
	}
	for _, dr := range results {
		if dr.Result == nil {
			tbl.AddRow(dr.ID, "-", "-", "-", "-", "-", dr.Err)
			continue
		}
		tbl.AddRow(dr.ID, dr.Result.Policy, dr.Result.Energy, dr.Result.LostValue,
			dr.Result.Cost, dr.Result.Rejected, "ok")
	}
	if len(results) > 0 {
		if rerr := tbl.Render(w); rerr != nil && err == nil {
			err = rerr
		}
	}
	fmt.Fprintf(w, "schedd: drained %d sessions, %d arrivals served\n",
		len(results), d.host.Metrics().Arrivals())
	return err
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (\":0\" picks a random port)")
	shards := fs.Int("shards", 16, "session map shards (rounded up to a power of two)")
	maxSessions := fs.Int("max-sessions", 1024, "admission limit on live sessions")
	maxBacklog := fs.Int("max-backlog", 256, "per-session arrival queue bound")
	applyBatch := fs.Int("apply-batch", 0, "max arrivals applied per batch (0 = drain everything queued)")
	shedAfter := fs.Duration("shed-after", 2*time.Second, "full-backlog stall budget before a submit sheds with 429 + Retry-After (0 blocks forever)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain bound on shutdown")
	dataDir := fs.String("data-dir", "", "write-ahead log directory; empty runs without durability")
	fsyncInterval := fs.Duration("fsync-interval", 5*time.Millisecond, "group-commit fsync interval (0 fsyncs every append)")
	checkpointEvery := fs.Int("checkpoint-every", 4096, "arrivals between per-session checkpoint/truncate compactions (0 disables)")
	walSegBytes := fs.Int64("wal-segment-bytes", 4<<20, "write-ahead log segment size before rotation")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	controllerMode := fs.Bool("controller", false, "run as the cluster controller instead of a worker")
	lease := fs.Duration("lease", 5*time.Second, "controller: worker lease; silence past it marks the node dead")
	vnodes := fs.Int("vnodes", 64, "controller: virtual nodes per worker on the placement ring")
	standby := fs.String("standby", "", "controller: run as hot standby of this primary URL; take over when its lease lapses")
	maxMigrations := fs.Int("max-migrations", 2, "controller: concurrent migration bound")
	migrationDeadline := fs.Duration("migration-deadline", 60*time.Second, "controller: per-migration attempt deadline")
	join := fs.String("join", "", "worker: controller base URL to join (requires -data-dir)")
	nodeName := fs.String("node-name", "", "worker: stable identity for rejoin reconciliation (default: the advertise URL)")
	advertise := fs.String("advertise", "", "base URL peers reach this process at (default http://<bound addr>)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *controllerMode {
		return runController(controllerConfig{
			addr: *addr, lease: *lease, vnodes: *vnodes,
			dataDir: *dataDir, advertise: *advertise, standby: *standby,
			maxMigrations: *maxMigrations, migrationDeadline: *migrationDeadline,
		}, stdout)
	}
	if *join != "" && *dataDir == "" {
		return fmt.Errorf("-join requires -data-dir: live migration ships the tenant's write-ahead log")
	}

	cfg := serve.Config{
		Shards: *shards, MaxSessions: *maxSessions,
		MaxBacklog: *maxBacklog, MaxApplyBatch: *applyBatch,
		ShedAfter: *shedAfter,
	}
	var store *wal.Store
	if *dataDir != "" {
		var err error
		store, err = wal.Open(*dataDir, wal.Options{
			FsyncInterval: *fsyncInterval, SegmentBytes: *walSegBytes,
		})
		if err != nil {
			return fmt.Errorf("opening wal: %w", err)
		}
		cfg.WAL = store
		cfg.CheckpointEvery = *checkpointEvery
	}
	d := newDaemon(cfg, *drainTimeout, *withPprof)
	d.store = store
	if store != nil {
		// Recover before the listener opens: no request ever observes a
		// half-rebuilt host, and "listening" doubles as the recovered
		// readiness marker. Corruption beyond a torn tail exits non-zero
		// here — serving rewritten history is worse than not serving.
		rs, err := d.host.Recover()
		if err != nil {
			store.Close()
			return fmt.Errorf("recovery refused: %w", err)
		}
		fmt.Fprintf(stdout, "schedd: recovered %d sessions, %d arrivals replayed (%d torn bytes truncated, %d retired logs swept)\n",
			rs.Sessions, rs.Arrivals, rs.TornBytes, rs.Removed)
	}
	if err := d.listen(*addr); err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	// The handler must be installed before the listening line goes out:
	// that line is the readiness marker, and an operator (or the crash
	// e2e) may signal the instant they see it.
	agentCtx, agentCancel := context.WithCancel(context.Background())
	defer agentCancel()
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + d.addr()
		}
		name := *nodeName
		if name == "" {
			name = adv
		}
		agent := cluster.NewAgent(cluster.NodeConfig{
			Name: name, Advertise: adv, Controller: *join,
		}, d.host, store)
		handler := cluster.NewNodeHandler(name, d.host, store, agent.Fence())
		if *withPprof {
			handler = withPprofMux(handler)
		}
		d.srv.Handler = handler
		// The agent joins with the recovered tenant list (recovery ran
		// above), then heartbeats until shutdown. A controller that is
		// briefly unreachable is retried — the worker keeps serving its
		// tenants on its own either way.
		go func() {
			for agentCtx.Err() == nil {
				err := agent.Run(agentCtx)
				if agentCtx.Err() != nil {
					return
				}
				fmt.Fprintf(stderr, "schedd: cluster agent: %v (retrying)\n", err)
				select {
				case <-agentCtx.Done():
					return
				case <-time.After(time.Second):
				}
			}
		}()
		fmt.Fprintf(stdout, "schedd: worker %q joining %s\n", name, *join)
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	fmt.Fprintf(stdout, "schedd: listening on %s\n", d.addr())
	errc := make(chan error, 1)
	go func() { errc <- d.serveHTTP() }()

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "schedd: %v, draining (second signal aborts)\n", s)
		go func() {
			<-sig
			os.Exit(1)
		}()
		agentCancel()
		return d.shutdown(stdout)
	}
}

// controllerConfig carries the controller-mode flags.
type controllerConfig struct {
	addr, dataDir, advertise, standby string
	lease, migrationDeadline          time.Duration
	vnodes, maxMigrations             int
}

// runController serves the cluster control plane: the join/heartbeat
// surface, the placement proxy and redirects, the migration verbs and
// the fleet-merged /metrics. It holds no sessions itself — shutdown is
// just closing the listener; the workers keep serving. The placement
// WAL under -data-dir is recovered before the listener opens, under
// the tenant-log contract: torn tail truncated, anything worse
// refuses boot non-zero.
func runController(cc controllerConfig, stdout io.Writer) error {
	if cc.dataDir == "" {
		return fmt.Errorf("-controller requires -data-dir: the placement log is what survives a controller crash")
	}
	ln, err := net.Listen("tcp", cc.addr)
	if err != nil {
		return err
	}
	adv := cc.advertise
	if adv == "" {
		adv = "http://" + ln.Addr().String()
	}
	c, err := cluster.OpenController(cluster.Options{
		Lease: cc.lease, VNodes: cc.vnodes, DataDir: cc.dataDir,
		Advertise: adv, Standby: cc.standby,
		MaxMigrations: cc.maxMigrations, MigrateTimeout: cc.migrationDeadline,
	})
	if err != nil {
		ln.Close()
		return fmt.Errorf("recovery refused: %w", err)
	}
	defer c.Close()
	srv := &http.Server{Handler: cluster.NewHTTPHandler(c)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	go c.RunLeaseChecker(ctx)
	if cc.standby != "" {
		// Tail the primary; when its lease lapses this controller takes
		// over, and the printed line is the e2e's takeover marker.
		go func() {
			if err := c.RunStandby(ctx); err == nil {
				fmt.Fprintf(stdout, "schedd: controller takeover (epoch %d)\n", c.Epoch())
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	role := "controller"
	if cc.standby != "" {
		role = "standby controller"
	}
	fmt.Fprintf(stdout, "schedd: %s listening on %s (lease %v, %d vnodes, epoch %d)\n",
		role, ln.Addr(), cc.lease, cc.vnodes, c.Epoch())
	errc := make(chan error, 1)
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		errc <- err
	}()
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "schedd: controller %v, shutting down\n", s)
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
		}
		return nil
	}
}
