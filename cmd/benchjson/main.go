// Command benchjson converts `go test -bench` text output on stdin
// into a JSON benchmark report on stdout, so benchmark runs can be
// committed, diffed and plotted as a perf trajectory (BENCH_*.json)
// instead of living in scrollback. It understands the standard
// benchmark line — name, iteration count, then value/unit pairs —
// including custom metrics like ns/arrival, and carries the run's
// environment header (goos, goarch, pkg, cpu) alongside.
//
// With -compare it turns the trajectory into an enforceable gate: it
// diffs two bench JSON files metric by metric and exits non-zero when
// any shared benchmark regressed past the tolerance.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | benchjson > bench.json
//	benchjson -compare old.json new.json [-tolerance 0.15]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the full benchmark name including sub-benchmark path,
	// with the -cpu suffix retained (e.g. "BenchmarkX/n=1000-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported pair, e.g.
	// "ns/op", "B/op", "allocs/op", "ns/arrival".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole run.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// run dispatches between the convert mode (stdin → JSON on stdout)
// and the compare mode. Flags may appear before or after the two
// compare paths (`benchjson -compare old new -tolerance 0.2`).
func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	compare := false
	tolerance := 0.15
	var paths []string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-compare" || a == "--compare":
			compare = true
		case a == "-tolerance" || a == "--tolerance":
			if i+1 >= len(args) {
				return 2, fmt.Errorf("-tolerance needs a value")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || v < 0 {
				return 2, fmt.Errorf("bad -tolerance %q", args[i+1])
			}
			tolerance = v
			i++
		case strings.HasPrefix(a, "-"):
			return 2, fmt.Errorf("unknown flag %q", a)
		default:
			paths = append(paths, a)
		}
	}
	if compare {
		if len(paths) != 2 {
			return 2, fmt.Errorf("-compare needs exactly two files, got %d", len(paths))
		}
		return compareFiles(stdout, paths[0], paths[1], tolerance)
	}
	if len(paths) != 0 {
		return 2, fmt.Errorf("convert mode reads stdin; unexpected arguments %v", paths)
	}
	rep, err := parse(stdin)
	if err != nil {
		return 1, err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return 1, err
	}
	return 0, nil
}

// parse reads benchmark text, collecting header fields and result
// lines; unknown lines (PASS, ok, test logs) are skipped.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for field, dst := range map[string]*string{
			"goos:": &rep.Goos, "goarch:": &rep.Goarch, "pkg:": &rep.Pkg, "cpu:": &rep.CPU,
		} {
			if rest, ok := strings.CutPrefix(line, field); ok {
				*dst = strings.TrimSpace(rest)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			e.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return rep, nil
}
