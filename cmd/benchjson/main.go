// Command benchjson converts `go test -bench` text output on stdin
// into a JSON benchmark report on stdout, so benchmark runs can be
// committed, diffed and plotted as a perf trajectory (BENCH_*.json)
// instead of living in scrollback. It understands the standard
// benchmark line — name, iteration count, then value/unit pairs —
// including custom metrics like ns/arrival, and carries the run's
// environment header (goos, goarch, pkg, cpu) alongside.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | benchjson > bench.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the full benchmark name including sub-benchmark path,
	// with the -cpu suffix retained (e.g. "BenchmarkX/n=1000-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported pair, e.g.
	// "ns/op", "B/op", "allocs/op", "ns/arrival".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole run.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads benchmark text, collecting header fields and result
// lines; unknown lines (PASS, ok, test logs) are skipped.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for field, dst := range map[string]*string{
			"goos:": &rep.Goos, "goarch:": &rep.Goarch, "pkg:": &rep.Pkg, "cpu:": &rep.CPU,
		} {
			if rest, ok := strings.CutPrefix(line, field); ok {
				*dst = strings.TrimSpace(rest)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			e.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return rep, nil
}
