package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSessionPerArrival/oa/n=1000-8         	    2048	    582904 ns/op	       582.7 ns/arrival	  245360 B/op	      35 allocs/op
BenchmarkSessionPerArrival/qoa/n=100000-8      	       1	1751096510 ns/op	     17511 ns/arrival	1615373536 B/op	      82 allocs/op
--- BENCH: some stray log line
PASS
ok  	repro	10.905s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" ||
		!strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("want 2 entries, got %d", len(rep.Benchmarks))
	}
	e := rep.Benchmarks[0]
	if e.Name != "BenchmarkSessionPerArrival/oa/n=1000-8" || e.Iterations != 2048 {
		t.Fatalf("entry 0: %+v", e)
	}
	for unit, want := range map[string]float64{
		"ns/op": 582904, "ns/arrival": 582.7, "B/op": 245360, "allocs/op": 35,
	} {
		if e.Metrics[unit] != want {
			t.Fatalf("%s = %v, want %v", unit, e.Metrics[unit], want)
		}
	}
	if rep.Benchmarks[1].Metrics["ns/arrival"] != 17511 {
		t.Fatalf("entry 1: %+v", rep.Benchmarks[1])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("want error on benchless input")
	}
}
