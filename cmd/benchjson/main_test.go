package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSessionPerArrival/oa/n=1000-8         	    2048	    582904 ns/op	       582.7 ns/arrival	  245360 B/op	      35 allocs/op
BenchmarkSessionPerArrival/qoa/n=100000-8      	       1	1751096510 ns/op	     17511 ns/arrival	1615373536 B/op	      82 allocs/op
--- BENCH: some stray log line
PASS
ok  	repro	10.905s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" ||
		!strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("want 2 entries, got %d", len(rep.Benchmarks))
	}
	e := rep.Benchmarks[0]
	if e.Name != "BenchmarkSessionPerArrival/oa/n=1000-8" || e.Iterations != 2048 {
		t.Fatalf("entry 0: %+v", e)
	}
	for unit, want := range map[string]float64{
		"ns/op": 582904, "ns/arrival": 582.7, "B/op": 245360, "allocs/op": 35,
	} {
		if e.Metrics[unit] != want {
			t.Fatalf("%s = %v, want %v", unit, e.Metrics[unit], want)
		}
	}
	if rep.Benchmarks[1].Metrics["ns/arrival"] != 17511 {
		t.Fatalf("entry 1: %+v", rep.Benchmarks[1])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("want error on benchless input")
	}
}

// writeBench writes a minimal bench JSON file for compare tests.
func writeBench(t *testing.T, dir, name string, entries []Entry) string {
	t.Helper()
	path := filepath.Join(dir, name)
	raw, err := json.Marshal(Report{Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	old := writeBench(t, dir, "old.json", []Entry{
		{Name: "BenchmarkX/n=1000-8", Iterations: 10, Metrics: map[string]float64{
			"ns/arrival": 100, "allocs/op": 50, "arrivals/sec": 1e6,
		}},
		{Name: "BenchmarkOnlyOld", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}},
	})

	// Within tolerance (and a throughput improvement): exit 0.
	ok := writeBench(t, dir, "ok.json", []Entry{
		// Different -cpu suffix must still match.
		{Name: "BenchmarkX/n=1000-16", Iterations: 10, Metrics: map[string]float64{
			"ns/arrival": 110, "allocs/op": 50, "arrivals/sec": 2e6,
		}},
		{Name: "BenchmarkOnlyNew", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}},
	})
	var out strings.Builder
	code, err := run([]string{"-compare", old, ok, "-tolerance", "0.15"}, nil, &out)
	if code != 0 || err != nil {
		t.Fatalf("clean compare: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "0 regression") {
		t.Fatalf("summary missing:\n%s", out.String())
	}

	// A slowdown past tolerance: exit 1 and name the metric.
	bad := writeBench(t, dir, "bad.json", []Entry{
		{Name: "BenchmarkX/n=1000-8", Iterations: 10, Metrics: map[string]float64{
			"ns/arrival": 130, "allocs/op": 50, "arrivals/sec": 1e6,
		}},
	})
	out.Reset()
	code, err = run([]string{"-compare", old, bad, "-tolerance", "0.15"}, nil, &out)
	if code != 1 || err == nil {
		t.Fatalf("regressed compare: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}

	// A throughput drop is a regression even though the number shrank.
	slow := writeBench(t, dir, "slow.json", []Entry{
		{Name: "BenchmarkX/n=1000-8", Iterations: 10, Metrics: map[string]float64{
			"ns/arrival": 100, "arrivals/sec": 5e5,
		}},
	})
	if code, _ := run([]string{"-compare", old, slow}, nil, io.Discard); code != 1 {
		t.Fatalf("throughput drop not flagged: code=%d", code)
	}

	// Wider tolerance admits the slowdown.
	if code, err := run([]string{"-compare", old, bad, "-tolerance", "0.5"}, nil, io.Discard); code != 0 || err != nil {
		t.Fatalf("tolerant compare: code=%d err=%v", code, err)
	}

	// Disjoint benchmark sets are a configuration error, not a pass.
	disjoint := writeBench(t, dir, "disjoint.json", []Entry{
		{Name: "BenchmarkZ", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}},
	})
	if code, err := run([]string{"-compare", old, disjoint}, nil, io.Discard); code != 2 || err == nil {
		t.Fatalf("disjoint compare: code=%d err=%v", code, err)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	if code, err := run([]string{"-compare", "one.json"}, nil, io.Discard); code != 2 || err == nil {
		t.Fatalf("one path: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"-tolerance", "nope", "-compare", "a", "b"}, nil, io.Discard); code != 2 || err == nil {
		t.Fatalf("bad tolerance: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"-bogus"}, nil, io.Discard); code != 2 || err == nil {
		t.Fatalf("bad flag: code=%d err=%v", code, err)
	}
}

func TestRunConvertMode(t *testing.T) {
	var out strings.Builder
	code, err := run(nil, strings.NewReader(sample), &out)
	if code != 0 || err != nil {
		t.Fatalf("convert: code=%d err=%v", code, err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil || len(rep.Benchmarks) != 2 {
		t.Fatalf("convert output: %v %s", err, out.String())
	}
}
