// The -compare mode: diff two bench JSON trajectories and fail on
// regression, making the committed BENCH_*.json files an enforceable
// perf gate instead of documentation. Benchmarks are matched by name
// with the -cpu suffix stripped (the suffix depends on the runner),
// and only metrics present on both sides are compared, so old and new
// files may cover different benchmark sets — the gate judges the
// intersection and says what it skipped.

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// higherIsBetter classifies a metric's direction: throughput-style
// units regress downward, everything else (ns/op, ns/arrival, B/op,
// allocs/op) regresses upward.
func higherIsBetter(unit string) bool {
	return strings.Contains(unit, "/sec") || strings.Contains(unit, "/s")
}

// baseName strips the -N cpu suffix go test appends to benchmark
// names, so runs from machines with different GOMAXPROCS align.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rep, nil
}

// compareFiles diffs newPath against oldPath and reports every shared
// metric. It returns exit code 1 (with a summarising error) when any
// metric regressed past the tolerance, 0 otherwise.
func compareFiles(w io.Writer, oldPath, newPath string, tolerance float64) (int, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 2, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 2, err
	}
	oldBy := map[string]Entry{}
	for _, e := range oldRep.Benchmarks {
		oldBy[baseName(e.Name)] = e
	}

	var regressions, compared, matched int
	for _, ne := range newRep.Benchmarks {
		name := baseName(ne.Name)
		oe, ok := oldBy[name]
		if !ok {
			continue
		}
		matched++
		for unit, nv := range ne.Metrics {
			ov, ok := oe.Metrics[unit]
			if !ok {
				continue
			}
			compared++
			status := "ok"
			var delta float64
			if ov != 0 { //schedlint:exactfloat zero guard before division, not a tolerance
				delta = (nv - ov) / ov
			} else if nv != 0 { //schedlint:exactfloat zero guard, baseline absent
				delta = 1
			}
			bad := false
			if higherIsBetter(unit) {
				bad = nv < ov*(1-tolerance)
			} else {
				bad = nv > ov*(1+tolerance) && nv-ov > 1e-9
			}
			if bad {
				status = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "%-60s %-12s %14g -> %14g  %+7.1f%%  %s\n",
				name, unit, ov, nv, 100*delta, status)
		}
	}
	fmt.Fprintf(w, "compared %d metrics across %d shared benchmarks (tolerance %.0f%%): %d regression(s)\n",
		compared, matched, 100*tolerance, regressions)
	if matched == 0 {
		return 2, fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath)
	}
	if regressions > 0 {
		return 1, fmt.Errorf("%d metric(s) regressed past %.0f%% tolerance", regressions, 100*tolerance)
	}
	return 0, nil
}
