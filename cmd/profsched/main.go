// Command profsched runs a scheduling algorithm over a JSON job trace
// and reports cost, energy, lost value and (for PD) the certified
// competitive ratio. The produced schedule is verified against the
// model constraints before anything is reported.
//
// Usage:
//
//	profsched -algo pd|cll|oa|moa|yds|avr|bkp|qoa|opt [-trace file] [-delta δ]
//	profsched -algos pd,oa,avr,... [-trace file]
//
// The trace is read from -trace or stdin. Algorithms oa/yds/avr/bkp/qoa
// ignore job values and require every job to be finished (single
// processor); moa is the multiprocessor OA (finish-all, any m); opt
// enumerates accept-sets (exponential, small traces only); pd handles
// values and any number of processors.
//
// The -algos mode replays the trace through every named algorithm
// concurrently (engine.Race) and prints one combined comparison table
// instead of the single-algorithm report.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/cll"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/moa"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/yds"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "profsched:", err)
		os.Exit(1)
	}
}

// run is the whole CLI behind a testable seam: flags are parsed from
// args, the trace comes from stdin unless -trace overrides it, and all
// report output goes to stdout.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("profsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", "pd", "algorithm: pd, cll, oa, moa, yds, avr, bkp, qoa, opt")
	algos := fs.String("algos", "", "comma-separated algorithms to race on the same trace (comparison mode)")
	trace := fs.String("trace", "", "JSON trace file (default stdin)")
	delta := fs.Float64("delta", 0, "override PD's δ (default α^{1-α})")
	profile := fs.Bool("profile", false, "render an ASCII total-speed profile")
	dump := fs.Bool("dump", false, "dump per-interval assignments (PD only)")
	gantt := fs.Bool("gantt", false, "render a per-processor ASCII Gantt chart")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not an error
		}
		return err
	}

	var r io.Reader = stdin
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	in, err := job.ReadTrace(r)
	if err != nil {
		return err
	}
	if *algos != "" {
		if *profile || *dump || *gantt {
			return fmt.Errorf("-profile, -dump and -gantt apply to single-algorithm mode only, not -algos")
		}
		return runComparison(in, strings.Split(*algos, ","), *delta, stdout)
	}
	return runSingle(in, *algo, *delta, *profile, *dump, *gantt, stdout)
}

// runSingle executes one algorithm and prints the classic report.
func runSingle(in *job.Instance, algo string, delta float64, profile, dump, gantt bool, w io.Writer) error {
	pm := power.Model{Alpha: in.Alpha}

	var (
		schedule *sched.Schedule
		extra    string
		err      error
	)
	switch algo {
	case "pd":
		var opts []core.Option
		if delta > 0 {
			opts = append(opts, core.WithDelta(delta))
		}
		s := core.New(in.M, pm, opts...)
		inst := in.Clone()
		inst.Normalize()
		for _, j := range inst.Jobs {
			if _, err := s.Arrive(j); err != nil {
				return err
			}
		}
		schedule = s.Schedule()
		dualV := s.DualValue()
		extra = fmt.Sprintf("dual lower bound   %12.6g\ncertified ratio    %12.6g (bound α^α = %.6g)",
			dualV, s.Cost()/dualV, pm.CompetitiveBound())
		if dump {
			extra += "\n\nper-interval assignment:"
			for _, st := range s.Snapshot() {
				extra += fmt.Sprintf("\n  [%.4g, %.4g) energy %.4g loads %v", st.T0, st.T1, st.Energy, st.Load)
			}
		}
	case "cll":
		res, err := cll.Run(in, pm)
		if err != nil {
			return err
		}
		schedule = res.Schedule
	case "oa":
		schedule, err = yds.OA(in)
	case "moa":
		schedule, err = moa.Run(in)
	case "yds":
		schedule, err = yds.YDS(in)
	case "avr":
		schedule, err = yds.AVR(in)
	case "bkp":
		schedule, err = yds.BKP(in)
	case "qoa":
		schedule, err = yds.QOA(in, pm)
	case "opt":
		sol, err2 := opt.Integral(in)
		if err2 != nil {
			return err2
		}
		schedule = sol.Schedule
		extra = fmt.Sprintf("certified opt gap  %12.6g", sol.Cost-sol.LowerBound)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}

	if err := sched.Verify(in, schedule); err != nil {
		return fmt.Errorf("schedule failed verification: %w", err)
	}
	energy := schedule.Energy(pm)
	lost := schedule.LostValue(in)
	fmt.Fprintf(w, "algorithm          %12s\njobs               %12d\nprocessors         %12d\nalpha              %12g\n",
		algo, len(in.Jobs), in.M, in.Alpha)
	fmt.Fprintf(w, "energy             %12.6g\nlost value         %12.6g\ncost               %12.6g\n",
		energy, lost, energy+lost)
	fmt.Fprintf(w, "rejected jobs      %12d\nmax speed          %12.6g\nverified           %12s\n",
		len(schedule.Rejected), schedule.MaxSpeed(), "yes")
	if extra != "" {
		fmt.Fprintln(w, extra)
	}
	if profile {
		fmt.Fprintln(w, schedule.RenderProfile(72))
	}
	if gantt {
		fmt.Fprintln(w, schedule.RenderGantt(72))
	}
	return nil
}

// policyFor maps an -algos name to an engine policy. Every schedule a
// policy emits is verified by the engine before it is reported.
func policyFor(name string, in *job.Instance, pm power.Model, delta float64) (engine.Policy, error) {
	switch name {
	case "pd":
		var opts []core.Option
		if delta > 0 {
			opts = append(opts, core.WithDelta(delta))
		}
		return engine.PD(in.M, pm, opts...), nil
	case "cll":
		return engine.CLL(pm), nil
	case "oa":
		return engine.OA(pm), nil
	case "moa":
		return engine.MOA(in.M, pm), nil
	case "yds":
		return engine.YDSOffline(pm), nil
	case "avr":
		return engine.AVR(pm), nil
	case "bkp":
		return engine.BKP(pm), nil
	case "qoa":
		return engine.QOA(pm), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q in -algos", name)
	}
}

// runComparison races the named algorithms over the trace concurrently
// and renders one combined table sorted cheapest cost first, each row
// annotated against the best.
func runComparison(in *job.Instance, names []string, delta float64, w io.Writer) error {
	pm := power.Model{Alpha: in.Alpha}
	policies := make([]engine.Policy, 0, len(names))
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		p, err := policyFor(name, in, pm, delta)
		if err != nil {
			return err
		}
		policies = append(policies, p)
	}
	if len(policies) == 0 {
		return fmt.Errorf("-algos: no algorithms given")
	}
	results, err := engine.Race(in, policies...)
	if err != nil {
		return err
	}
	sort.SliceStable(results, func(i, k int) bool { return results[i].Cost < results[k].Cost })
	best := results[0].Cost
	if best <= 0 {
		best = 1 // empty trace: avoid 0/0 in the ratio column
	}
	t := &stats.Table{
		Title: fmt.Sprintf("profsched comparison: %d jobs, m=%d, α=%g", len(in.Jobs), in.M, in.Alpha),
		Headers: []string{"algo", "energy", "lost value", "cost", "cost/best",
			"rejected", "max speed", "max arrive", "total arrive"},
		Notes: []string{
			"all schedules verified; policies replayed concurrently with per-run isolation",
			"arrive columns are wall-clock decision latency measured under concurrent",
			"replay and may include scheduler contention; use -algo for isolated timing",
		},
	}
	for _, r := range results {
		t.AddRow(r.Policy, r.Energy, r.LostValue, r.Cost, r.Cost/best,
			r.Rejected, r.Schedule.MaxSpeed(),
			r.MaxArrive.String(), r.TotalArrive.String())
	}
	return t.Render(w)
}
