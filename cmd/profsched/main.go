// Command profsched runs a scheduling algorithm over a JSON job trace
// and reports cost, energy, lost value and (for PD) the certified
// competitive ratio. The produced schedule is verified against the
// model constraints before anything is reported.
//
// Usage:
//
//	profsched -algo NAME [-trace file] [-delta δ]
//	profsched -algos a,b,c [-trace file]
//	profsched -list
//
// Algorithms are resolved through the engine's policy registry:
// profsched -list prints every registered policy together with its
// capability metadata (supported processor range, profit vs finish-all
// model, online vs batch vs clairvoyant planning), and the same table
// is appended to -h. Incompatible traces are refused with the reason
// (e.g. a single-processor policy on an m=4 trace).
//
// The trace is read from -trace or stdin. The -algos mode replays the
// trace through every named algorithm concurrently (engine.RaceSpecs)
// and prints one combined comparison table instead of the
// single-algorithm report.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "profsched:", err)
		os.Exit(1)
	}
}

// registryTable renders the policy registry: one row per registered
// policy with its capability metadata. It backs both -list and -h, so
// there is no hand-maintained algorithm list to drift.
func registryTable(reg *engine.Registry) *stats.Table {
	t := &stats.Table{
		Title:   "registered policies",
		Headers: []string{"name", "m", "model", "mode", "params", "summary"},
		Notes: []string{
			"model: profit optimises energy + lost value; finish-all ignores values",
			"mode: online plans per arrival, batch buffers and plans at close,",
			"clairvoyant sees the whole trace (offline baselines)",
		},
	}
	for _, r := range reg.All() {
		params := "-"
		if len(r.Params) > 0 {
			params = strings.Join(r.Params, ",")
		}
		t.AddRow(r.Name, r.Caps.MRange(), r.Caps.Model(), r.Caps.Mode(), params, r.Summary)
	}
	return t
}

// run is the whole CLI behind a testable seam: flags are parsed from
// args, the trace comes from stdin unless -trace overrides it, and all
// report output goes to stdout.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	reg := engine.DefaultRegistry()
	fs := flag.NewFlagSet("profsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", "pd", "algorithm name (see -list)")
	algos := fs.String("algos", "", "comma-separated algorithms to race on the same trace (comparison mode)")
	list := fs.Bool("list", false, "print the policy registry and exit")
	trace := fs.String("trace", "", "JSON trace file (default stdin)")
	delta := fs.Float64("delta", 0, "override PD's δ (default α^{1-α})")
	profile := fs.Bool("profile", false, "render an ASCII total-speed profile")
	dump := fs.Bool("dump", false, "dump per-interval assignments (policies exposing interval state)")
	gantt := fs.Bool("gantt", false, "render a per-processor ASCII Gantt chart")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: profsched [flags]")
		fs.PrintDefaults()
		fmt.Fprintln(stderr)
		_ = registryTable(reg).Render(stderr)
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not an error
		}
		return err
	}
	if *list {
		return registryTable(reg).Render(stdout)
	}

	var r io.Reader = stdin
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	in, err := job.ReadTrace(r)
	if err != nil {
		return err
	}
	if *algos != "" {
		if *profile || *dump || *gantt {
			return fmt.Errorf("-profile, -dump and -gantt apply to single-algorithm mode only, not -algos")
		}
		return runComparison(in, reg, strings.Split(*algos, ","), *delta, stdout)
	}
	return runSingle(in, reg, *algo, *delta, *profile, *dump, *gantt, stdout)
}

// specFor builds the registry spec selecting the named policy for this
// trace's environment, attaching δ only where the policy declares it —
// comparison mode races mixed policies, so δ goes to those that take
// it. Single-algorithm mode attaches δ unconditionally instead, so an
// inapplicable -delta is refused, not silently dropped.
func specFor(reg *engine.Registry, name string, in *job.Instance, delta float64) (engine.Spec, error) {
	spec := engine.Spec{Name: name, M: in.M, Alpha: in.Alpha}
	if delta <= 0 {
		return spec, nil
	}
	r, err := reg.Lookup(name)
	if err != nil {
		return spec, err
	}
	for _, p := range r.Params {
		if p == "delta" {
			spec.Params = map[string]float64{"delta": delta}
			break
		}
	}
	return spec, nil
}

// runSingle executes one algorithm through the replay engine and
// prints the classic report. Policy-specific extras (PD's dual
// certificate and interval dump, opt's certified gap) are discovered
// by capability interfaces, not by name.
func runSingle(in *job.Instance, reg *engine.Registry, algo string, delta float64, profile, dump, gantt bool, w io.Writer) error {
	spec := engine.Spec{Name: algo, M: in.M, Alpha: in.Alpha}
	if delta > 0 {
		spec.Params = map[string]float64{"delta": delta}
	}
	p, err := reg.New(spec)
	if err != nil {
		return err
	}
	// Refuse unsupported extras before the replay runs: a failed
	// invocation must not first print a complete-looking report.
	dumper, canDump := p.(interface{ IntervalStates() []core.IntervalState })
	if dump && !canDump {
		return fmt.Errorf("-dump: algorithm %q does not expose per-interval state", algo)
	}
	res, err := engine.Replay(in, p)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "algorithm          %12s\njobs               %12d\nprocessors         %12d\nalpha              %12g\n",
		algo, len(in.Jobs), in.M, in.Alpha)
	fmt.Fprintf(w, "energy             %12.6g\nlost value         %12.6g\ncost               %12.6g\n",
		res.Energy, res.LostValue, res.Cost)
	fmt.Fprintf(w, "rejected jobs      %12d\nmax speed          %12.6g\nverified           %12s\n",
		res.Rejected, res.Schedule.MaxSpeed(), "yes")
	fmt.Fprintf(w, "max arrive         %12s\ntotal arrive       %12s\nplan time          %12s\n",
		res.MaxArrive, res.TotalArrive, res.PlanTime)

	if dc, ok := p.(interface{ DualValue() float64 }); ok {
		pm := spec.PowerModel()
		dualV := dc.DualValue()
		fmt.Fprintf(w, "dual lower bound   %12.6g\ncertified ratio    %12.6g (bound α^α = %.6g)\n",
			dualV, res.Cost/dualV, pm.CompetitiveBound())
	}
	if g, ok := p.(interface{ OptimalityGap() float64 }); ok {
		fmt.Fprintf(w, "certified opt gap  %12.6g\n", g.OptimalityGap())
	}
	if dump {
		fmt.Fprintln(w, "\nper-interval assignment:")
		for _, st := range dumper.IntervalStates() {
			fmt.Fprintf(w, "  [%.4g, %.4g) energy %.4g loads %v\n", st.T0, st.T1, st.Energy, st.Load)
		}
	}
	if profile {
		fmt.Fprintln(w, res.Schedule.RenderProfile(72))
	}
	if gantt {
		fmt.Fprintln(w, res.Schedule.RenderGantt(72))
	}
	return nil
}

// runComparison races the named algorithms over the trace concurrently
// and renders one combined table sorted cheapest cost first, each row
// annotated against the best.
func runComparison(in *job.Instance, reg *engine.Registry, names []string, delta float64, w io.Writer) error {
	specs := make([]engine.Spec, 0, len(names))
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		spec, err := specFor(reg, name, in, delta)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return fmt.Errorf("-algos: no algorithms given")
	}
	results, err := reg.RaceSpecs(in, specs...)
	if err != nil {
		return err
	}
	sort.SliceStable(results, func(i, k int) bool { return results[i].Cost < results[k].Cost })
	best := results[0].Cost
	if best <= 0 {
		best = 1 // empty trace: avoid 0/0 in the ratio column
	}
	t := &stats.Table{
		Title: fmt.Sprintf("profsched comparison: %d jobs, m=%d, α=%g", len(in.Jobs), in.M, in.Alpha),
		Headers: []string{"algo", "energy", "lost value", "cost", "cost/best",
			"rejected", "max speed", "max arrive", "total arrive", "plan"},
		Notes: []string{
			"all schedules verified; policies replayed concurrently with per-run isolation",
			"arrive columns are wall-clock per-arrival decision latency (zero for batch",
			"policies, which buffer and plan at close — see plan); concurrent replay",
			"may include scheduler contention, use -algo for isolated timing",
		},
	}
	for _, r := range results {
		t.AddRow(r.Policy, r.Energy, r.LostValue, r.Cost, r.Cost/best,
			r.Rejected, r.Schedule.MaxSpeed(),
			r.MaxArrive.String(), r.TotalArrive.String(), r.PlanTime.String())
	}
	return t.Render(w)
}
