// Command profsched runs a scheduling algorithm over a JSON job trace
// and reports cost, energy, lost value and (for PD) the certified
// competitive ratio. The produced schedule is verified against the
// model constraints before anything is reported.
//
// Usage:
//
//	profsched -algo pd|cll|oa|moa|yds|avr|bkp|qoa|opt [-trace file] [-delta δ]
//
// The trace is read from -trace or stdin. Algorithms oa/yds/avr/bkp/qoa
// ignore job values and require every job to be finished (single
// processor); moa is the multiprocessor OA (finish-all, any m); opt enumerates accept-sets (exponential, small traces
// only); pd handles values and any number of processors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cll"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/moa"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/yds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profsched:", err)
		os.Exit(1)
	}
}

func run() error {
	algo := flag.String("algo", "pd", "algorithm: pd, cll, oa, moa, yds, avr, bkp, qoa, opt")
	trace := flag.String("trace", "", "JSON trace file (default stdin)")
	delta := flag.Float64("delta", 0, "override PD's δ (default α^{1-α})")
	profile := flag.Bool("profile", false, "render an ASCII total-speed profile")
	dump := flag.Bool("dump", false, "dump per-interval assignments (PD only)")
	gantt := flag.Bool("gantt", false, "render a per-processor ASCII Gantt chart")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	in, err := job.ReadTrace(r)
	if err != nil {
		return err
	}
	pm := power.Model{Alpha: in.Alpha}

	var (
		schedule *sched.Schedule
		extra    string
	)
	switch *algo {
	case "pd":
		var opts []core.Option
		if *delta > 0 {
			opts = append(opts, core.WithDelta(*delta))
		}
		s := core.New(in.M, pm, opts...)
		inst := in.Clone()
		inst.Normalize()
		for _, j := range inst.Jobs {
			if _, err := s.Arrive(j); err != nil {
				return err
			}
		}
		schedule = s.Schedule()
		dualV := s.DualValue()
		extra = fmt.Sprintf("dual lower bound   %12.6g\ncertified ratio    %12.6g (bound α^α = %.6g)",
			dualV, s.Cost()/dualV, pm.CompetitiveBound())
		if *dump {
			extra += "\n\nper-interval assignment:"
			for _, st := range s.Snapshot() {
				extra += fmt.Sprintf("\n  [%.4g, %.4g) energy %.4g loads %v", st.T0, st.T1, st.Energy, st.Load)
			}
		}
	case "cll":
		res, err := cll.Run(in, pm)
		if err != nil {
			return err
		}
		schedule = res.Schedule
	case "oa":
		schedule, err = yds.OA(in)
	case "moa":
		schedule, err = moa.Run(in)
	case "yds":
		schedule, err = yds.YDS(in)
	case "avr":
		schedule, err = yds.AVR(in)
	case "bkp":
		schedule, err = yds.BKP(in)
	case "qoa":
		schedule, err = yds.QOA(in, pm)
	case "opt":
		sol, err2 := opt.Integral(in)
		if err2 != nil {
			return err2
		}
		schedule = sol.Schedule
		extra = fmt.Sprintf("certified opt gap  %12.6g", sol.Cost-sol.LowerBound)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}

	if err := sched.Verify(in, schedule); err != nil {
		return fmt.Errorf("schedule failed verification: %w", err)
	}
	energy := schedule.Energy(pm)
	lost := schedule.LostValue(in)
	fmt.Printf("algorithm          %12s\njobs               %12d\nprocessors         %12d\nalpha              %12g\n",
		*algo, len(in.Jobs), in.M, in.Alpha)
	fmt.Printf("energy             %12.6g\nlost value         %12.6g\ncost               %12.6g\n",
		energy, lost, energy+lost)
	fmt.Printf("rejected jobs      %12d\nmax speed          %12.6g\nverified           %12s\n",
		len(schedule.Rejected), schedule.MaxSpeed(), "yes")
	if extra != "" {
		fmt.Println(extra)
	}
	if *profile {
		fmt.Println(schedule.RenderProfile(72))
	}
	if *gantt {
		fmt.Println(schedule.RenderGantt(72))
	}
	return nil
}
