package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/workload"
)

// writeTrace serialises an instance to a temp file and returns the path.
func writeTrace(t *testing.T, in *job.Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := in.WriteTrace(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func finishAllTrace(t *testing.T, n, m int) string {
	// Infinite values exercise the "inf" JSON wire format end to end.
	return writeTrace(t, workload.Uniform(workload.Config{
		N: n, M: m, Alpha: 2, Seed: 42, ValueScale: math.Inf(1),
	}))
}

func valueTrace(t *testing.T, n, m int) string {
	return writeTrace(t, workload.Uniform(workload.Config{
		N: n, M: m, Alpha: 2, Seed: 43, ValueScale: 1,
	}))
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, strings.NewReader(""), &out, &errb)
	return out.String(), err
}

// TestEveryAlgoBranch drives each -algo through the full report path.
func TestEveryAlgoBranch(t *testing.T) {
	finish := finishAllTrace(t, 10, 1)
	valued := valueTrace(t, 8, 2)
	cases := []struct {
		algo, trace string
	}{
		{"pd", valued},
		{"cll", valueTrace(t, 8, 1)},
		{"oa", finish},
		{"moa", finishAllTrace(t, 10, 2)},
		{"yds", finish},
		{"avr", finish},
		{"bkp", finish},
		{"qoa", finish},
		{"opt", valueTrace(t, 5, 1)},
	}
	for _, c := range cases {
		out, err := runCLI(t, "-algo", c.algo, "-trace", c.trace)
		if err != nil {
			t.Fatalf("-algo %s: %v", c.algo, err)
		}
		for _, want := range []string{"algorithm", c.algo, "verified", "yes", "energy"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-algo %s output missing %q:\n%s", c.algo, want, out)
			}
		}
	}
}

func TestPDExtras(t *testing.T) {
	trace := valueTrace(t, 6, 1)
	out, err := runCLI(t, "-algo", "pd", "-delta", "0.4", "-dump", "-profile", "-gantt", "-trace", trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dual lower bound", "certified ratio", "per-interval assignment"} {
		if !strings.Contains(out, want) {
			t.Fatalf("PD output missing %q:\n%s", want, out)
		}
	}
}

func TestAlgosComparisonMode(t *testing.T) {
	trace := finishAllTrace(t, 12, 1)
	out, err := runCLI(t, "-algos", "pd, oa,avr,bkp,qoa,yds", "-trace", trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "profsched comparison") {
		t.Fatalf("missing comparison header:\n%s", out)
	}
	for _, name := range []string{"pd", "oa", "avr", "bkp", "qoa", "yds"} {
		if !strings.Contains(out, name) {
			t.Fatalf("comparison table missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "cost/best") {
		t.Fatalf("comparison table missing relative column:\n%s", out)
	}
}

func TestAlgosMultiprocessor(t *testing.T) {
	trace := finishAllTrace(t, 10, 3)
	out, err := runCLI(t, "-algos", "pd,moa", "-trace", trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "moa") {
		t.Fatalf("missing moa row:\n%s", out)
	}
}

// TestListFlag: -list renders the registry with capability metadata
// and needs no trace.
func TestListFlag(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"registered policies",
		"pd", "cll", "oa", "moa", "yds", "avr", "bkp", "qoa", "opt",
		"online", "batch", "clairvoyant", "profit", "finish-all", "delta",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestUsageIncludesRegistry: -h renders the same registry table
// instead of a hand-maintained algorithm list.
func TestUsageIncludesRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"registered policies", "qoa", "clairvoyant"} {
		if !strings.Contains(errb.String(), want) {
			t.Fatalf("usage missing %q:\n%s", want, errb.String())
		}
	}
}

// TestCapabilityRefusals: incompatible specs are refused with the
// reason, compatible neighbours keep working (moa with m=1 is fine,
// cll with m=4 is not).
func TestCapabilityRefusals(t *testing.T) {
	multi := finishAllTrace(t, 8, 4)
	for _, algo := range []string{"cll", "oa", "avr", "qoa", "yds"} {
		_, err := runCLI(t, "-algo", algo, "-trace", multi)
		if err == nil {
			t.Fatalf("-algo %s on an m=4 trace must be refused", algo)
		}
		for _, want := range []string{algo, "m=4"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("refusal must explain itself (missing %q): %v", want, err)
			}
		}
	}
	if _, err := runCLI(t, "-algo", "moa", "-trace", finishAllTrace(t, 8, 1)); err != nil {
		t.Fatalf("moa with m=1 jobs must be fine: %v", err)
	}
	// Unknown names list the registry in the error.
	_, err := runCLI(t, "-algo", "nope", "-trace", finishAllTrace(t, 5, 1))
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown algorithm must list the registry: %v", err)
	}
	// -delta reaches only policies that declare it.
	if _, err := runCLI(t, "-algo", "oa", "-delta", "0.4", "-trace", finishAllTrace(t, 5, 1)); err == nil {
		t.Fatal("-delta with oa must be refused (oa declares no parameters)")
	}
	// -dump needs a policy exposing interval state.
	if _, err := runCLI(t, "-algo", "oa", "-dump", "-trace", finishAllTrace(t, 5, 1)); err == nil {
		t.Fatal("-dump with oa must be refused")
	}
}

// TestLatencyReport: the single-algorithm report carries the honest
// latency lines — nonzero arrive for online policies, zeroed arrive
// with the cost in plan time for batch ones.
func TestLatencyReport(t *testing.T) {
	trace := finishAllTrace(t, 12, 1)
	out, err := runCLI(t, "-algo", "oa", "-trace", trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"max arrive", "total arrive", "plan time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "total arrive                 0s") {
		t.Fatalf("online oa reported zero arrive latency:\n%s", out)
	}
	out, err = runCLI(t, "-algo", "yds", "-trace", trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "max arrive                   0s") {
		t.Fatalf("clairvoyant yds must report zero arrive latency:\n%s", out)
	}
}

func TestErrorPaths(t *testing.T) {
	trace := finishAllTrace(t, 5, 1)
	if _, err := runCLI(t, "-algo", "nope", "-trace", trace); err == nil {
		t.Fatal("unknown -algo must fail")
	}
	if _, err := runCLI(t, "-algos", "oa,nope", "-trace", trace); err == nil {
		t.Fatal("unknown name in -algos must fail")
	}
	if _, err := runCLI(t, "-algos", " , ", "-trace", trace); err == nil {
		t.Fatal("empty -algos list must fail")
	}
	if _, err := runCLI(t, "-algos", "pd,oa", "-gantt", "-trace", trace); err == nil {
		t.Fatal("-gantt with -algos must be rejected, not silently ignored")
	}
	if _, err := runCLI(t, "-trace", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing trace file must fail")
	}
	if _, err := runCLI(t, "-badflag"); err == nil {
		t.Fatal("bad flag must fail")
	}
	var out bytes.Buffer
	if err := run([]string{"-algo", "oa"}, strings.NewReader("{not json"), &out, &out); err == nil {
		t.Fatal("malformed stdin trace must fail")
	}
	// A trace that is valid JSON but an invalid instance.
	bad := writeTrace(t, &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 2, Deadline: 1, Work: 1, Value: 1},
	}})
	if _, err := runCLI(t, "-algo", "oa", "-trace", bad); err == nil {
		t.Fatal("invalid instance must fail validation")
	}
}

func TestStdinTrace(t *testing.T) {
	in := workload.Uniform(workload.Config{N: 5, M: 1, Alpha: 2, Seed: 9, ValueScale: math.Inf(1)})
	var buf bytes.Buffer
	if err := in.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-algo", "yds"}, &buf, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified") {
		t.Fatalf("stdin path broken:\n%s", out.String())
	}
}
