// Command tracegen generates workload traces as JSON instances for use
// with cmd/profsched.
//
// Usage:
//
//	tracegen -kind uniform|poisson|diurnal|bursty|heavytail|lowerbound \
//	         [-n 50] [-m 2] [-alpha 2] [-seed 1] [-scale 1] [-o trace.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/job"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "uniform", "workload kind: uniform, poisson, diurnal, bursty, heavytail, lowerbound")
	n := flag.Int("n", 50, "number of jobs")
	m := flag.Int("m", 2, "number of processors")
	alpha := flag.Float64("alpha", 2, "energy exponent")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1, "value scale γ (use 'inf' semantics with -finish-all)")
	finishAll := flag.Bool("finish-all", false, "infinite job values (classical model)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	vs := *scale
	if *finishAll {
		vs = math.Inf(1)
	}
	cfg := workload.Config{N: *n, M: *m, Alpha: *alpha, Seed: *seed, ValueScale: vs}

	var in *job.Instance
	switch *kind {
	case "uniform":
		in = workload.Uniform(cfg)
	case "poisson":
		in = workload.Poisson(cfg)
	case "diurnal":
		in = workload.Diurnal(cfg)
	case "bursty":
		in = workload.Bursty(cfg)
	case "heavytail":
		in = workload.HeavyTail(cfg)
	case "lowerbound":
		in = workload.LowerBound(*n, *alpha)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := in.WriteTrace(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
