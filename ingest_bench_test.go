package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/serve"
	"repro/internal/wal"
	"repro/internal/workload"
)

// BenchmarkServeIngest measures the serving daemon's ingest ceiling
// through the full HTTP stack: one POST of an n-line NDJSON arrival
// stream into a live oa session, timed end to end (session create and
// close/verify excluded). Two arms share the stack:
//
//   - batched: the shipping path — pooled zero-allocation NDJSON
//     decoder, slice-batch submits, batch-draining applier with
//     coalesced replans.
//   - durable: the batched path over a write-ahead log — every drained
//     batch appended and CRC-framed before it is applied, the final
//     ack held for the group fsync. The batched/durable ratio is the
//     price of durability (the PR 7 claim: durable ingest keeps ≥50%
//     of the WAL-off arrivals/sec). Checkpointing is off so the arm
//     measures the append+fsync path, not compaction policy.
//   - dedup: the durable path with exactly-once stamping — the request
//     carries X-Producer-Id/X-Producer-Seq, so the whole body decodes
//     up front, admits atomically as one stamped batch, lands in the
//     WAL as one stamped record, and the ack waits on that batch's
//     exact position. The dedup/durable ratio is the price of the
//     idempotence window (the PR 10 claim: stamped ingest keeps ≥90%
//     of the plain durable arrivals/sec).
//   - unbatched: the pre-batching reference path — reflective
//     json.Decoder per line, one Submit per job, one lock/replan per
//     arrival (MaxApplyBatch 1), the ingest loop exactly as it shipped
//     before the batched rework.
//
// The committed perf trajectory (BENCH_pr10.json) records all four, so
// the batched/unbatched ratio — PR 5's ≥5× arrivals/sec claim — the
// durability tax and the stamping tax are visible in one run,
// alongside allocs/arrival through the stack.
func BenchmarkServeIngest(b *testing.B) {
	for _, n := range []int{100_000} {
		in := workload.HeavyTail(workload.Config{
			N: n, M: 1, Alpha: 2, Seed: 17, Horizon: float64(n) / 10, ValueScale: math.Inf(1),
		})
		// Quantize arrival times to tick granularity (~10 arrivals per
		// tick), the shape of any high-rate stream with timestamped
		// admission: release ties are what the batched path's replan
		// coalescing is designed for, and what the per-arrival
		// reference path cannot exploit.
		for i := range in.Jobs {
			in.Jobs[i].Release = math.Floor(in.Jobs[i].Release)
		}
		in.Normalize()
		body := make([]byte, 0, 64*n)
		for _, j := range in.Jobs {
			body = job.AppendJSON(body, j)
			body = append(body, '\n')
		}
		spec := `{"id":%q,"spec":{"name":"oa","m":1,"alpha":2}}`

		for _, mode := range []string{"batched", "durable", "dedup", "unbatched"} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				cfg := serve.Config{MaxSessions: 16, MaxBacklog: 4096}
				if mode == "unbatched" {
					cfg.MaxApplyBatch = 1
				}
				if mode == "durable" || mode == "dedup" {
					st, err := wal.Open(b.TempDir(), wal.Options{FsyncInterval: 5 * time.Millisecond})
					if err != nil {
						b.Fatal(err)
					}
					defer st.Close()
					cfg.WAL = st
				}
				if mode == "dedup" {
					// A stamped batch admits atomically, so the ring must
					// hold the whole request body.
					cfg.MaxBacklog = n
				}
				host := serve.NewHost(cfg)
				handler := serve.NewHandler(host)
				if mode == "unbatched" {
					handler = withReferenceIngest(host, handler)
				}
				srv := httptest.NewServer(handler)
				defer srv.Close()
				client := srv.Client()

				do := func(method, path string, body io.Reader, want int, stamped bool) {
					b.Helper()
					req, err := http.NewRequest(method, srv.URL+path, body)
					if err != nil {
						b.Fatal(err)
					}
					if stamped {
						req.Header.Set("X-Producer-Id", "bench")
						req.Header.Set("X-Producer-Seq", "1")
					}
					resp, err := client.Do(req)
					if err != nil {
						b.Fatal(err)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != want {
						b.Fatalf("%s %s: %s", method, path, resp.Status)
					}
				}

				var m1, m2 runtime.MemStats
				var mallocs uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					id := fmt.Sprintf("t%d", i)
					do("POST", "/v1/sessions", bytes.NewReader([]byte(fmt.Sprintf(spec, id))), http.StatusCreated, false)
					runtime.ReadMemStats(&m1)
					b.StartTimer()
					// Each iteration is a fresh session, so the stamped
					// arm's producer window restarts at seq 1.
					do("POST", "/v1/sessions/"+id+"/arrivals", bytes.NewReader(body), http.StatusOK, mode == "dedup")
					b.StopTimer()
					runtime.ReadMemStats(&m2)
					mallocs += m2.Mallocs - m1.Mallocs
					do("DELETE", "/v1/sessions/"+id, nil, http.StatusOK, false)
					b.StartTimer()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/arrival")
				b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "arrivals/sec")
				// Whole-process allocation count across the ingest window
				// (client and server share the process), per arrival.
				b.ReportMetric(float64(mallocs)/float64(b.N*n), "allocs/arrival")
			})
		}

		// mc: the multi-core arm — several tenants ingest concurrently at
		// GOMAXPROCS 1, 4 and 16, so the per-tenant streams contend on the
		// host's shared metrics. This is the arm that would expose
		// cache-line false sharing on the hot counters: with the striped,
		// cache-line-padded histogram and backlog cells, aggregate
		// arrivals/sec should not collapse as cores grow. (On a smaller
		// machine the higher arms run oversubscribed; the numbers are
		// honest for the hardware.)
		tenantBodies := make([][]byte, 4)
		for t := range tenantBodies {
			tenantBodies[t] = body
		}
		for _, cores := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("mc/cores=%d/n=%d", cores, n), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(cores)
				defer runtime.GOMAXPROCS(prev)
				host := serve.NewHost(serve.Config{MaxSessions: 16, MaxBacklog: 4096})
				srv := httptest.NewServer(serve.NewHandler(host))
				defer srv.Close()
				client := srv.Client()
				do := func(method, path string, body io.Reader, want int) error {
					req, err := http.NewRequest(method, srv.URL+path, body)
					if err != nil {
						return err
					}
					resp, err := client.Do(req)
					if err != nil {
						return err
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != want {
						return fmt.Errorf("%s %s: %s", method, path, resp.Status)
					}
					return nil
				}
				tenants := len(tenantBodies)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ids := make([]string, tenants)
					for t := range ids {
						ids[t] = fmt.Sprintf("mc%d-%d", i, t)
						if err := do("POST", "/v1/sessions", bytes.NewReader([]byte(fmt.Sprintf(spec, ids[t]))), http.StatusCreated); err != nil {
							b.Fatal(err)
						}
					}
					errc := make(chan error, tenants)
					b.StartTimer()
					for t := range ids {
						go func(t int) {
							errc <- do("POST", "/v1/sessions/"+ids[t]+"/arrivals",
								bytes.NewReader(tenantBodies[t]), http.StatusOK)
						}(t)
					}
					for t := 0; t < tenants; t++ {
						if err := <-errc; err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					for _, id := range ids {
						if err := do("DELETE", "/v1/sessions/"+id, nil, http.StatusOK); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
				}
				total := b.N * n * tenants
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/arrival")
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "arrivals/sec")
			})
		}
	}
}

// withReferenceIngest overrides the arrivals route with the pre-PR
// ingest loop: reflective JSON decoding and one queue submit per
// arrival. Everything else falls through to the shipping handler.
func withReferenceIngest(h *serve.Host, fallthru http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", fallthru)
	mux.HandleFunc("POST /v1/sessions/{id}/arrivals", func(w http.ResponseWriter, r *http.Request) {
		s, err := h.Get(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		accepted := 0
		dec := json.NewDecoder(r.Body)
		for {
			var j job.Job
			if err := dec.Decode(&j); err == io.EOF {
				break
			} else if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := s.Submit(r.Context(), j); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			accepted++
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"id": s.ID, "accepted": accepted})
	})
	return mux
}
