package repro

import (
	"math"
	"testing"

	"repro/internal/chen"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sched"
)

// FuzzPDCertificate feeds arbitrary (decoded) instances to PD and
// asserts the full invariant set: no crash, feasible schedule, and the
// Theorem 3 certificate. `go test` runs the seed corpus; `go test
// -fuzz=FuzzPDCertificate` explores further.
func FuzzPDCertificate(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(1), 2.0)
	f.Add(int64(2), uint8(10), uint8(4), 3.0)
	f.Add(int64(3), uint8(1), uint8(2), 1.1)
	f.Add(int64(4), uint8(25), uint8(3), 2.7)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint8, alphaRaw float64) {
		n := int(nRaw%24) + 1
		m := int(mRaw%6) + 1
		if math.IsNaN(alphaRaw) || math.IsInf(alphaRaw, 0) {
			alphaRaw = 2
		}
		alpha := 1.05 + math.Mod(math.Abs(alphaRaw), 3)
		in := fuzzInstance(seed, n, m, alpha)
		res, err := core.Run(in)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if err := sched.Verify(in, res.Schedule); err != nil {
			t.Fatalf("verify: %v", err)
		}
		bound := math.Pow(alpha, alpha)
		if res.Dual > 0 && !numeric.LessEqual(res.Cost, bound*res.Dual, 1e-5) {
			t.Fatalf("certificate: cost %v > α^α·dual %v", res.Cost, bound*res.Dual)
		}
	})
}

// FuzzWorkAtSpeedInverts fuzzes the capacity-inversion primitive: any
// positive capacity must insert back at exactly the requested speed,
// and capacity must be monotone in speed.
func FuzzWorkAtSpeedInverts(f *testing.F) {
	f.Add(int64(1), uint8(2), 1.0, 2.0)
	f.Add(int64(9), uint8(5), 0.25, 7.5)
	f.Fuzz(func(t *testing.T, seed int64, mRaw uint8, l, sp float64) {
		if !(l > 1e-9 && l < 1e9) || !(sp >= 0 && sp < 1e9) {
			t.Skip()
		}
		m := int(mRaw%6) + 1
		sys := chen.System{M: m, Power: power.New(2)}
		k := int(seed % 7)
		if k < 0 {
			k = -k
		}
		others := fuzzItems(seed, k+1)
		z := sys.WorkAtSpeed(l, others, sp)
		if z < 0 || math.IsNaN(z) {
			t.Fatalf("invalid capacity %v", z)
		}
		if z > 0 {
			p := sys.Partition(l, append(append([]chen.Item{}, others...), chen.Item{ID: 999, Work: z}))
			if got := p.SpeedOf(999); math.Abs(got-sp) > 1e-6*(1+sp) {
				t.Fatalf("inserted z=%v, speed %v want %v", z, got, sp)
			}
		}
		if z2 := sys.WorkAtSpeed(l, others, sp*1.5+1e-9); z2 < z-1e-9 {
			t.Fatalf("capacity not monotone: z(%v)=%v z(%v)=%v", sp, z, sp*1.5, z2)
		}
	})
}

func fuzzInstance(seed int64, n, m int, alpha float64) *job.Instance {
	// xorshift-style deterministic stream, no rand dependency needed.
	s := uint64(seed)*2654435761 + 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1_000_000) / 1_000_000
	}
	in := &job.Instance{M: m, Alpha: alpha}
	for i := 0; i < n; i++ {
		r := next() * 10
		span := 0.05 + next()*4
		w := 0.01 + next()*3
		v := next() * next() * 20
		in.Jobs = append(in.Jobs, job.Job{ID: i, Release: r, Deadline: r + span, Work: w, Value: v})
	}
	in.Normalize()
	return in
}

func fuzzItems(seed int64, n int) []chen.Item {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 1
	items := make([]chen.Item, n)
	for i := range items {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		items[i] = chen.Item{ID: i, Work: float64(s%10_000) / 1_000}
	}
	return items
}
